// Package blob is the content-addressed substrate under PackageVessel
// (§3.5): chunks are identified by the digest of their bytes, not by a
// (package, version, index) triple.
//
// Content addressing buys three properties at once (the Nix insight from
// PAPERS.md):
//
//   - Dedup across versions: if v2 of a package changes 10% of its
//     chunks, the other 90% keep their digests, so they already exist in
//     every store and on every peer that holds v1. Publishing v2 uploads
//     only the new chunks, and a fetching agent downloads only them.
//   - Integrity without trust: a receiver verifies a chunk by hashing the
//     bytes and comparing against the manifest entry — it never has to
//     trust the sender, so any peer may serve any chunk it holds,
//     regardless of which package version it was fetched for.
//   - Natural rarity: a swarm coordinator counts holders per digest, and
//     chunks shared between versions automatically have many holders, so
//     rarest-first scheduling concentrates on the genuinely new bytes.
//
// A Manifest is the ordered list of chunk references for one (package,
// version); its own canonical encoding is digest-addressed too, so the
// tiny record distributed through Configerator can name the whole
// multi-GB package by a single hash.
//
// Simulation note: a Chunk carries its true bytes (which the digest
// covers) plus a logical size — the number of bytes the chunk stands for
// on the wire and on disk. Experiments model multi-GB packages by giving
// each chunk a small representative payload and a megabyte-scale logical
// size; bandwidth accounting charges the logical size while integrity
// checks hash the real bytes. Chunks are immutable and shared by pointer
// across every simulated node, so a 10k-agent fleet holds one copy of the
// package content, not ten thousand.
package blob

import (
	"encoding/json"
	"fmt"

	"configerator/internal/vcs"
)

// Digest is the 64-bit content address of a chunk (or of a manifest's
// canonical encoding). It uses the same FNV-1a hash the distribution
// plane already puts on the wire (vcs.HashBytes).
type Digest uint64

// DigestOf hashes bytes to their content address.
func DigestOf(b []byte) Digest { return Digest(vcs.HashBytes(b)) }

// String renders the digest as 16 lowercase hex digits.
func (d Digest) String() string { return fmt.Sprintf("%016x", uint64(d)) }

// ParseDigest parses the String form.
func ParseDigest(s string) (Digest, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil || len(s) != 16 {
		return 0, fmt.Errorf("blob: bad digest %q", s)
	}
	return Digest(v), nil
}

// Chunk is one immutable content-addressed block. Data is the true
// content (what the digest covers); Size is the logical byte count the
// chunk stands for in bandwidth and storage accounting (>= len(Data) in
// scaled simulations, == len(Data) for real content).
type Chunk struct {
	digest Digest
	data   []byte
	size   int
}

// NewChunk builds a chunk from its content. logicalSize <= 0 means the
// content is full-fidelity (logical size = len(data)). The data slice is
// owned by the chunk after the call and must not be mutated.
func NewChunk(data []byte, logicalSize int) *Chunk {
	if logicalSize <= 0 {
		logicalSize = len(data)
	}
	return &Chunk{digest: DigestOf(data), data: data, size: logicalSize}
}

// Digest is the chunk's content address.
func (c *Chunk) Digest() Digest { return c.digest }

// Size is the logical byte count.
func (c *Chunk) Size() int { return c.size }

// Data is the chunk content. Callers must not mutate it.
func (c *Chunk) Data() []byte { return c.data }

// Ref names one chunk inside a manifest.
type Ref struct {
	Digest Digest `json:"digest"`
	Size   int    `json:"size"`
}

// Manifest is the complete recipe for one (package, version): the ordered
// chunk references. Everything else about the bulk content is derivable —
// total size is the sum of ref sizes, and the manifest's own digest (of
// its canonical encoding) is the single hash the small Configerator
// record carries.
type Manifest struct {
	Name    string `json:"name"`
	Version int64  `json:"version"`
	Chunks  []Ref  `json:"chunks"`
}

// NumChunks is the chunk count.
func (m Manifest) NumChunks() int { return len(m.Chunks) }

// Size is the package's total logical size.
func (m Manifest) Size() int64 {
	var n int64
	for _, r := range m.Chunks {
		n += int64(r.Size)
	}
	return n
}

// Key identifies the (package, version) pair.
func (m Manifest) Key() string { return fmt.Sprintf("%s@%d", m.Name, m.Version) }

// Encode renders the canonical JSON form.
func (m Manifest) Encode() ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("blob: encoding manifest %s: %w", m.Key(), err)
	}
	return b, nil
}

// Digest is the content address of the canonical encoding. (Marshaling a
// Manifest cannot fail — it is plain data — so no error is surfaced.)
func (m Manifest) Digest() Digest {
	b, _ := m.Encode()
	return DigestOf(b)
}

// ParseManifest decodes and validates a manifest.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("blob: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// Validate checks structural invariants.
func (m Manifest) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("blob: manifest without a name")
	case m.Version < 0:
		return fmt.Errorf("blob: manifest %s: negative version", m.Name)
	case len(m.Chunks) == 0:
		return fmt.Errorf("blob: manifest %s: no chunks", m.Key())
	}
	for i, r := range m.Chunks {
		if r.Size <= 0 {
			return fmt.Errorf("blob: manifest %s: chunk %d has size %d", m.Key(), i, r.Size)
		}
	}
	return nil
}

// Distinct returns the manifest's unique digests with their sizes (a
// package may reference the same chunk more than once; transfers fetch it
// once).
func (m Manifest) Distinct() map[Digest]int {
	set := make(map[Digest]int, len(m.Chunks))
	for _, r := range m.Chunks {
		if _, ok := set[r.Digest]; !ok {
			set[r.Digest] = r.Size
		}
	}
	return set
}
