package blob

import (
	"fmt"
	"testing"
)

func mkChunk(s string, logical int) *Chunk { return NewChunk([]byte(s), logical) }

func mkManifest(name string, version int64, chunks ...*Chunk) Manifest {
	m := Manifest{Name: name, Version: version}
	for _, c := range chunks {
		m.Chunks = append(m.Chunks, Ref{Digest: c.Digest(), Size: c.Size()})
	}
	return m
}

func TestDigestRoundTrip(t *testing.T) {
	d := DigestOf([]byte("hello"))
	got, err := ParseDigest(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip %s != %s", got, d)
	}
	if len(d.String()) != 16 {
		t.Errorf("digest string %q not 16 hex chars", d.String())
	}
	if _, err := ParseDigest("xyz"); err == nil {
		t.Error("ParseDigest accepted garbage")
	}
}

func TestChunkLogicalSize(t *testing.T) {
	c := mkChunk("abc", 1<<20)
	if c.Size() != 1<<20 || len(c.Data()) != 3 {
		t.Errorf("size=%d len=%d", c.Size(), len(c.Data()))
	}
	if full := mkChunk("abc", 0); full.Size() != 3 {
		t.Errorf("full-fidelity size = %d", full.Size())
	}
	if c.Digest() != DigestOf([]byte("abc")) {
		t.Error("digest covers data, not logical size")
	}
}

func TestManifestEncodeParse(t *testing.T) {
	m := mkManifest("model", 3, mkChunk("a", 100), mkChunk("b", 100), mkChunk("c", 50))
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != "model@3" || got.NumChunks() != 3 || got.Size() != 250 {
		t.Errorf("parsed %+v", got)
	}
	if got.Digest() != m.Digest() {
		t.Error("digest not stable across encode/parse")
	}
}

func TestManifestValidation(t *testing.T) {
	ok := mkManifest("m", 1, mkChunk("a", 10))
	bad := []Manifest{
		{},                       // no name
		{Name: "m", Version: -1}, // negative version
		{Name: "m", Version: 1},  // no chunks
		{Name: "m", Version: 1, Chunks: []Ref{{Digest: 1, Size: 0}}}, // zero-size chunk
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad manifest %d accepted", i)
		}
	}
}

func TestStoreDedup(t *testing.T) {
	s := NewStore()
	c := mkChunk("shared", 1000)
	if !s.Put(c) {
		t.Fatal("first Put reported dedup")
	}
	if s.Put(mkChunk("shared", 1000)) {
		t.Fatal("second Put of identical content not deduped")
	}
	if st := s.Stats(); st.Chunks != 1 || st.LogicalBytes != 1000 {
		t.Errorf("stats %+v", st)
	}
}

func TestPutVerifiedRejectsCorrupt(t *testing.T) {
	s := NewStore()
	want := DigestOf([]byte("good"))
	if _, err := s.PutVerified([]byte("evil"), 10, want); err == nil {
		t.Fatal("corrupt bytes accepted")
	}
	if s.Has(want) {
		t.Fatal("corrupt bytes stored")
	}
	if _, err := s.PutVerified([]byte("good"), 10, want); err != nil {
		t.Fatal(err)
	}
	if !s.Has(want) {
		t.Fatal("verified bytes not stored")
	}
}

func TestTransferJournalLifecycle(t *testing.T) {
	s := NewStore()
	a, b := mkChunk("a", 10), mkChunk("b", 10)
	m := mkManifest("pkg", 1, a, b)

	s.Begin(m, "registry", "tracker")
	js := s.Journals()
	if len(js) != 1 || js[0].Origin != "registry" || js[0].Coordinator != "tracker" {
		t.Fatalf("journals = %+v", js)
	}
	if got := s.Missing(m); len(got) != 2 {
		t.Fatalf("missing = %v", got)
	}
	s.Put(a)
	if got := s.Missing(m); len(got) != 1 || got[0] != b.Digest() {
		t.Fatalf("missing after one put = %v", got)
	}
	if err := s.Commit(m); err == nil {
		t.Fatal("commit with a hole succeeded")
	}
	s.Put(b)
	if err := s.Commit(m); err != nil {
		t.Fatal(err)
	}
	if len(s.Journals()) != 0 {
		t.Error("journal survived commit")
	}
	if !s.Complete("pkg", 1) {
		t.Error("manifest not recorded complete")
	}
	// Re-Begin of a completed transfer is a no-op.
	s.Begin(m, "registry", "tracker")
	if len(s.Journals()) != 0 {
		t.Error("Begin re-journaled a completed manifest")
	}
}

func TestVerifyDropsCorrupt(t *testing.T) {
	s := NewStore()
	good, bad := mkChunk("good", 10), mkChunk("bad", 10)
	m := mkManifest("pkg", 1, good, bad)
	s.Put(good)
	// Simulate on-disk corruption: store bytes under bad's digest that do
	// not hash to it.
	s.mu.Lock()
	s.chunks[bad.Digest()] = &Chunk{digest: bad.Digest(), data: []byte("flipped"), size: 10}
	s.mu.Unlock()

	present, missing := s.Verify(m)
	if len(present) != 1 || present[0] != good.Digest() {
		t.Errorf("present = %v", present)
	}
	if len(missing) != 1 || missing[0] != bad.Digest() {
		t.Errorf("missing = %v", missing)
	}
	if s.Has(bad.Digest()) {
		t.Error("corrupt chunk not dropped")
	}
}

func TestAbandonKeepsChunks(t *testing.T) {
	s := NewStore()
	c := mkChunk("kept", 10)
	m := mkManifest("pkg", 1, c)
	s.Begin(m, "o", "t")
	s.Put(c)
	s.Abandon(m)
	if len(s.Journals()) != 0 {
		t.Error("journal survived abandon")
	}
	if !s.Has(c.Digest()) {
		t.Error("abandon dropped a content-addressed chunk")
	}
}

func TestDistinctCollapsesRepeats(t *testing.T) {
	c := mkChunk("rep", 10)
	m := Manifest{Name: "p", Version: 1, Chunks: []Ref{
		{Digest: c.Digest(), Size: 10}, {Digest: c.Digest(), Size: 10},
	}}
	if got := m.Distinct(); len(got) != 1 {
		t.Errorf("distinct = %v", got)
	}
	if m.Size() != 20 {
		t.Errorf("size = %d (repeats each count logically)", m.Size())
	}
}

func TestJournalsDeterministicOrder(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"zebra", "alpha", "mid"} {
		s.Begin(mkManifest(name, 1, mkChunk(name, 10)), "o", "t")
	}
	var got []string
	for _, j := range s.Journals() {
		got = append(got, j.Manifest.Name)
	}
	want := fmt.Sprint([]string{"alpha", "mid", "zebra"})
	if fmt.Sprint(got) != want {
		t.Errorf("order %v, want %v", got, want)
	}
}
