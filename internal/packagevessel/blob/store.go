// The Store is the node-local blob repository: digest-keyed chunks plus
// the manifests that have been fully assembled from them, plus a journal
// of in-progress transfers. It models an agent's disk: it survives the
// process (in the simulation, the node handler's crash/restart), which is
// what makes mid-package resume possible — a restarted agent re-verifies
// what the journal says should be on disk and fetches only the digests
// that are missing or fail verification.
package blob

import (
	"fmt"
	"sort"
	"sync"
)

// Journal records one in-progress transfer (the "incomplete file" entry):
// the manifest being assembled and where the bytes come from. Origin and
// Coordinator are opaque node names (the store does not depend on the
// network layer).
type Journal struct {
	Manifest    Manifest
	Origin      string // the registry holding the authoritative copy
	Coordinator string // the swarm tracker
}

// StoreStats summarizes a store's contents.
type StoreStats struct {
	Chunks       int   // distinct chunks held
	LogicalBytes int64 // sum of their logical sizes
	Manifests    int   // completed (package, version) manifests
	Journals     int   // in-progress transfers
}

// Store holds content-addressed chunks and package manifests. All methods
// are safe for concurrent use; within the simulation each node owns its
// store and touches it from the single event loop.
type Store struct {
	mu        sync.Mutex
	chunks    map[Digest]*Chunk
	manifests map[string]Manifest // completed, keyed by Manifest.Key()
	journals  map[string]*Journal // in-progress, keyed by Manifest.Key()
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		chunks:    make(map[Digest]*Chunk),
		manifests: make(map[string]Manifest),
		journals:  make(map[string]*Journal),
	}
}

// Put registers a chunk. It returns false when the digest was already
// present — the dedup hit the content-addressed design exists for.
func (s *Store) Put(c *Chunk) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunks[c.digest]; ok {
		return false
	}
	s.chunks[c.digest] = c
	return true
}

// PutVerified registers received bytes only if they hash to want —
// integrity is verification of a digest, not trust in a sender.
func (s *Store) PutVerified(data []byte, logicalSize int, want Digest) (*Chunk, error) {
	if got := DigestOf(data); got != want {
		return nil, fmt.Errorf("blob: chunk digest mismatch: got %s want %s", got, want)
	}
	c := NewChunk(data, logicalSize)
	s.Put(c)
	return c, nil
}

// Get returns the chunk for a digest.
func (s *Store) Get(d Digest) (*Chunk, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.chunks[d]
	return c, ok
}

// Has reports whether the digest is present.
func (s *Store) Has(d Digest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.chunks[d]
	return ok
}

// Drop removes a chunk (quarantine of corrupt on-disk data).
func (s *Store) Drop(d Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.chunks, d)
}

// Missing returns the manifest's distinct digests not yet in the store,
// in manifest order.
func (s *Store) Missing(m Manifest) []Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[Digest]bool, len(m.Chunks))
	var out []Digest
	for _, r := range m.Chunks {
		if seen[r.Digest] {
			continue
		}
		seen[r.Digest] = true
		if _, ok := s.chunks[r.Digest]; !ok {
			out = append(out, r.Digest)
		}
	}
	return out
}

// Begin journals an in-progress transfer. Beginning an already-complete
// or already-journaled key is a no-op (idempotent restart).
func (s *Store) Begin(m Manifest, origin, coordinator string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := m.Key()
	if _, done := s.manifests[key]; done {
		return
	}
	if _, ok := s.journals[key]; ok {
		return
	}
	s.journals[key] = &Journal{Manifest: m, Origin: origin, Coordinator: coordinator}
}

// Abandon drops a transfer's journal (e.g. a newer version superseded
// it). Chunks already fetched stay in the store: they are content-
// addressed, so they may dedup a future version's transfer.
func (s *Store) Abandon(m Manifest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.journals, m.Key())
}

// Journals returns the in-progress transfers sorted by key, so restart
// recovery is deterministic.
func (s *Store) Journals() []Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.journals))
	for k := range s.journals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Journal, 0, len(keys))
	for _, k := range keys {
		out = append(out, *s.journals[k])
	}
	return out
}

// Verify re-checks a manifest's chunks against what is actually in the
// store, re-hashing each chunk's bytes (the restarted agent's "what is
// really on disk?" pass). Chunks whose bytes no longer match their digest
// are dropped and reported missing. Returns the verified-present and
// missing digest sets, each in manifest order without duplicates.
func (s *Store) Verify(m Manifest) (present, missing []Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[Digest]bool, len(m.Chunks))
	for _, r := range m.Chunks {
		if seen[r.Digest] {
			continue
		}
		seen[r.Digest] = true
		c, ok := s.chunks[r.Digest]
		if ok && DigestOf(c.data) == r.Digest {
			present = append(present, r.Digest)
			continue
		}
		if ok {
			delete(s.chunks, r.Digest) // corrupt on disk
		}
		missing = append(missing, r.Digest)
	}
	return present, missing
}

// Commit finalizes a transfer: every chunk the manifest references must
// be present, or an error names the first hole. On success the journal is
// cleared and the manifest recorded as complete.
func (s *Store) Commit(m Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range m.Chunks {
		if _, ok := s.chunks[r.Digest]; !ok {
			return fmt.Errorf("blob: commit %s: chunk %d (%s) missing", m.Key(), i, r.Digest)
		}
	}
	key := m.Key()
	delete(s.journals, key)
	s.manifests[key] = m
	return nil
}

// Manifest returns the completed manifest for (name, version).
func (s *Store) Manifest(name string, version int64) (Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[fmt.Sprintf("%s@%d", name, version)]
	return m, ok
}

// Complete reports whether (name, version) is fully assembled.
func (s *Store) Complete(name string, version int64) bool {
	_, ok := s.Manifest(name, version)
	return ok
}

// Manifests returns every completed manifest, sorted by key.
func (s *Store) Manifests() []Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.manifests))
	for k := range s.manifests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Manifest, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.manifests[k])
	}
	return out
}

// Stats summarizes the store.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{Chunks: len(s.chunks), Manifests: len(s.manifests), Journals: len(s.journals)}
	for _, c := range s.chunks {
		st.LogicalBytes += int64(c.size)
	}
	return st
}
