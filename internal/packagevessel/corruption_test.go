package packagevessel

import (
	"testing"
	"time"

	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
)

// rogue is a peer that advertises chunks it then serves corrupted: every
// msgGetChunk is answered with bytes that do not hash to the requested
// digest. Content addressing makes this attack (or plain bit rot on a
// peer's disk) detectable at the receiver.
type rogue struct {
	id     simnet.NodeID
	Served int
}

func (r *rogue) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	if m, ok := msg.(msgGetChunk); ok {
		r.Served++
		ctx.SendSized(from, msgChunk{
			Digest: m.Digest, Data: []byte("corrupt payload"), Size: DefaultChunkSize, OK: true,
		}, DefaultChunkSize)
	}
}

// TestCorruptPeerQuarantined: a peer serving digest-mismatched bytes is
// quarantined after the first bad chunk, and every chunk is re-fetched
// from an honest holder — the final package verifies.
func TestCorruptPeerQuarantined(t *testing.T) {
	net := simnet.New(simnet.DefaultLatency(), 21)
	// The registry sits in a far cluster; the rogue shares the agent's
	// cluster, so locality-aware selection prefers it — worst case.
	registry := NewRegistry(net, "registry", simnet.Placement{Region: "us", Cluster: "store"}, "tracker")
	net.SetBandwidth("registry", serverBps, serverBps)
	tracker := NewTracker(net, "tracker", simnet.Placement{Region: "us", Cluster: "store"})
	bad := &rogue{id: "rogue"}
	net.AddNode("rogue", simnet.Placement{Region: "us", Cluster: "c0"}, bad)
	net.SetBandwidth("rogue", serverBps, serverBps)
	a := NewAgent(net, "srv-0", simnet.Placement{Region: "us", Cluster: "c0"}, Options{})
	net.SetBandwidth("srv-0", serverBps, serverBps)

	m, err := registry.Publish(SyntheticPackage("model", 1, 8<<20, DefaultChunkSize, 42))
	if err != nil {
		t.Fatal(err)
	}
	// The rogue claims to hold every digest.
	digests := make([]blob.Digest, 0, len(m.Chunks))
	for _, r := range m.Chunks {
		digests = append(digests, r.Digest)
	}
	net.Send("rogue", tracker.ID(), msgAnnounce{Digests: digests})
	net.RunFor(time.Second)

	a.OnAnnounce(MetadataFor(m, "registry", "tracker"))
	net.RunFor(5 * time.Minute)

	if !a.Complete("model", 1) {
		t.Fatal("download never completed despite an honest holder")
	}
	if bad.Served == 0 {
		t.Fatal("rogue was never asked; locality setup is not exercising the corrupt path")
	}
	if a.CorruptChunks == 0 {
		t.Fatal("no corrupt chunks detected")
	}
	q := a.Quarantined()
	if len(q) != 1 || q[0] != "rogue" {
		t.Fatalf("quarantined = %v, want [rogue]", q)
	}
	// Quarantine is immediate: after the first mismatch no further fetch
	// goes to the rogue, so it served at most the per-peer in-flight cap.
	if bad.Served > 2 {
		t.Errorf("rogue served %d fetches after detection should have stopped at <= 2", bad.Served)
	}
	// Every committed chunk verifies against its manifest digest.
	if present, missing := a.Store().Verify(m); len(missing) != 0 || len(present) != 8 {
		t.Errorf("final verify: %d present, %d missing", len(present), len(missing))
	}
}
