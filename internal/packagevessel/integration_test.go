package packagevessel_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/confclient"
	"configerator/internal/core"
	pv "configerator/internal/packagevessel"
	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
)

// TestMetadataThroughConfigerator wires the full hybrid subscription-P2P
// model of §3.5: the package metadata is a small config landed through the
// pipeline, distributed by Zeus to every server's proxy, and each server's
// subscription callback hands it to the local PackageVessel agent, which
// then swarms the bulk content. Publishing a new model version is nothing
// but another config change — and with content addressing, v2 moves only
// its changed chunks.
func TestMetadataThroughConfigerator(t *testing.T) {
	fleet := cluster.New(cluster.SmallConfig(6, 77)) // 24 servers
	fleet.Net.RunFor(10 * time.Second)
	p := core.New(core.Options{Fleet: fleet})

	// Registry + tracker live beside the fleet.
	registry := pv.NewRegistry(fleet.Net, "pv-registry", simnet.Placement{Region: "us-west", Cluster: "store"}, "pv-tracker")
	fleet.Net.SetBandwidth("pv-registry", 1.25e8, 1.25e8)
	pv.NewTracker(fleet.Net, "pv-tracker", simnet.Placement{Region: "us-west", Cluster: "store"})

	const metaPath = "models/ranker.meta.json"
	zpath := core.ZeusPath(metaPath)
	fleet.SubscribeAll(zpath)

	// One PackageVessel agent per server, fed by the server's proxy
	// subscription to the metadata config.
	completed := 0
	var agents []*pv.Agent
	for i, srv := range fleet.AllServers() {
		id := simnet.NodeID(fmt.Sprintf("pv-agent-%d", i))
		agent := pv.NewAgent(fleet.Net, id, srv.Placement, pv.Options{})
		fleet.Net.SetBandwidth(id, 1.25e8, 1.25e8)
		agent.OnComplete(func(blob.Manifest, time.Duration, pv.TransferStats) { completed++ })
		a := agent
		srv.Client.Watch(context.Background(), zpath, func(cfg *confclient.Value) {
			a.OnMetadata(cfg.Raw)
		})
		agents = append(agents, agent)
	}

	publish := func(pkg pv.Package) {
		m, err := registry.Publish(pkg)
		if err != nil {
			t.Fatalf("publish %s@%d: %v", pkg.Name, pkg.Version, err)
		}
		data, err := pv.MetadataFor(m, registry.ID(), registry.Tracker()).Encode()
		if err != nil {
			t.Fatal(err)
		}
		rep := p.Submit(&core.ChangeRequest{
			Author: "model-publisher", Reviewer: "oncall",
			Title:      fmt.Sprintf("publish ranker v%d", pkg.Version),
			Raws:       map[string][]byte{metaPath: data},
			SkipCanary: true,
		})
		if !rep.OK() {
			t.Fatalf("publish v%d blocked: %v", pkg.Version, rep.Err)
		}
	}

	v1 := pv.SyntheticPackage("ranker", 1, 24<<20, pv.DefaultChunkSize, 7)
	publish(v1)
	fleet.Net.RunFor(3 * time.Minute)
	if completed != len(agents) {
		t.Fatalf("v1: %d of %d agents complete", completed, len(agents))
	}
	for i, a := range agents {
		if !a.Complete("ranker", 1) {
			t.Fatalf("agent %d missing v1", i)
		}
	}

	// A new version is just another config change; every server converges,
	// fetching only the changed chunks.
	completed = 0
	publish(pv.NextVersion(v1, 2, 0.25, 7))
	fleet.Net.RunFor(3 * time.Minute)
	if completed != len(agents) {
		t.Fatalf("v2: %d of %d agents complete", completed, len(agents))
	}
	for i, a := range agents {
		if !a.Complete("ranker", 2) {
			t.Fatalf("agent %d missing v2", i)
		}
	}
}
