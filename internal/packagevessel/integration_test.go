package packagevessel

import (
	"context"
	"fmt"
	"testing"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/confclient"
	"configerator/internal/core"
	"configerator/internal/simnet"
)

// TestMetadataThroughConfigerator wires the full hybrid subscription-P2P
// model of §3.5: the package metadata is a small config landed through the
// pipeline, distributed by Zeus to every server's proxy, and each server's
// subscription callback hands it to the local PackageVessel agent, which
// then swarms the bulk content. Publishing a new model version is nothing
// but another config change.
func TestMetadataThroughConfigerator(t *testing.T) {
	fleet := cluster.New(cluster.SmallConfig(6, 77)) // 24 servers
	fleet.Net.RunFor(10 * time.Second)
	p := core.New(core.Options{Fleet: fleet})

	// Storage + tracker live beside the fleet.
	storage := NewStorage(fleet.Net, "pv-storage", simnet.Placement{Region: "us-west", Cluster: "store"})
	fleet.Net.SetBandwidth("pv-storage", 1.25e8, 1.25e8)
	tracker := NewTracker(fleet.Net, "pv-tracker", simnet.Placement{Region: "us-west", Cluster: "store"})

	const metaPath = "models/ranker.meta.json"
	zpath := core.ZeusPath(metaPath)
	fleet.SubscribeAll(zpath)

	// One PackageVessel agent per server, fed by the server's proxy
	// subscription to the metadata config.
	completed := 0
	var agents []*Agent
	for i, srv := range fleet.AllServers() {
		agent := NewAgent(fleet.Net, simnet.NodeID(fmt.Sprintf("pv-agent-%d", i)), srv.Placement)
		fleet.Net.SetBandwidth(simnet.NodeID(fmt.Sprintf("pv-agent-%d", i)), 1.25e8, 1.25e8)
		agent.OnComplete(func(Metadata, time.Duration) { completed++ })
		a := agent
		srv.Client.Watch(context.Background(), zpath, func(cfg *confclient.Value) {
			a.OnMetadata(cfg.Raw)
		})
		agents = append(agents, agent)
	}

	publish := func(version int64) {
		meta := storage.Upload(tracker, "ranker", version, 24<<20, DefaultChunkSize, "pv-tracker")
		rep := p.Submit(&core.ChangeRequest{
			Author: "model-publisher", Reviewer: "oncall",
			Title:      fmt.Sprintf("publish ranker v%d", version),
			Raws:       map[string][]byte{metaPath: meta.Encode()},
			SkipCanary: true,
		})
		if !rep.OK() {
			t.Fatalf("publish v%d blocked: %v", version, rep.Err)
		}
	}

	publish(1)
	fleet.Net.RunFor(3 * time.Minute)
	if completed != len(agents) {
		t.Fatalf("v1: %d of %d agents complete", completed, len(agents))
	}
	for i, a := range agents {
		if !a.Has("ranker", 1) {
			t.Fatalf("agent %d missing v1", i)
		}
	}

	// A new version is just another config change; every server converges.
	completed = 0
	publish(2)
	fleet.Net.RunFor(3 * time.Minute)
	if completed != len(agents) {
		t.Fatalf("v2: %d of %d agents complete", completed, len(agents))
	}
	for i, a := range agents {
		if !a.Has("ranker", 2) {
			t.Fatalf("agent %d missing v2", i)
		}
	}
}
