// Package packagevessel implements PackageVessel (§3.5): distribution of
// large configs (e.g. GBs of machine-learning models) by separating a
// config's small metadata from its bulk content — rebuilt around a
// content-addressed chunk store (see the blob subpackage).
//
// Publishing is Publish(Package): the registry chunks the content,
// registers only the digests absent from its store (cross-version dedup),
// and returns a blob.Manifest. The small Metadata record stored in
// Configerator names that manifest by digest; when it lands, Zeus pushes
// it through the distribution tree with the usual consistency guarantee,
// and every subscribed server's Agent fetches the manifest, journals the
// transfer, and swarms the missing chunks from peers — rarest-digest-
// first, locality aware, several in parallel with a per-peer in-flight
// cap. Integrity is verification of a digest rather than trust in a
// sender: a chunk whose bytes do not hash to the manifest entry
// quarantines the peer that served it, and the chunk is re-fetched from
// another holder.
//
// Because chunks are identified by content, most of a new version already
// exists on every peer that holds the old one — an Agent starting v2
// fetches only the changed digests, and seeds advertise digests, not
// (name, version, index) triples, so a v1 holder is automatically a
// useful seed for v2. An interrupted transfer resumes from the journal:
// a restarted Agent re-verifies what is on disk and fetches only what is
// missing.
//
// Versions are immutable once published; mutable names live in the tag
// namespace (latest, canary, prod). Promote is an explicit metadata
// write — a TagRecord landed through the landing strip like any other
// change, with a promotion gate (internal/landingstrip) refusing tags
// that name unpublished versions or skip the canary stage on the way to
// prod.
package packagevessel

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"configerator/internal/obs"
	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
	"configerator/internal/stats"
)

// DefaultChunkSize is 1 MiB, a typical piece size.
const DefaultChunkSize = 1 << 20

// ---- Metadata: the small record stored in Configerator ----

// Metadata is the small artifact stored in Configerator for a large
// config: it names the package's manifest by content digest; the bulk
// content is wholly derivable from that. Registry and Tracker locate the
// authoritative copy and the swarm coordinator.
type Metadata struct {
	Name     string        `json:"name"`
	Version  int64         `json:"version"`
	Size     int64         `json:"size"`
	Manifest string        `json:"manifest"` // hex digest of the manifest encoding
	Registry simnet.NodeID `json:"registry"`
	Tracker  simnet.NodeID `json:"tracker"`
}

// MetadataFor builds the record announcing a published manifest.
func MetadataFor(m blob.Manifest, registry, tracker simnet.NodeID) Metadata {
	return Metadata{
		Name: m.Name, Version: m.Version, Size: m.Size(),
		Manifest: m.Digest().String(), Registry: registry, Tracker: tracker,
	}
}

// ManifestDigest decodes the manifest's content address.
func (m Metadata) ManifestDigest() (blob.Digest, error) {
	return blob.ParseDigest(m.Manifest)
}

// Encode renders the metadata artifact (what Configerator stores).
func (m Metadata) Encode() ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("packagevessel: encoding metadata %s@%d: %w", m.Name, m.Version, err)
	}
	return b, nil
}

// ParseMetadata decodes and validates a metadata artifact. Negative
// versions are rejected — version numbers only move forward.
func ParseMetadata(data []byte) (Metadata, error) {
	var m Metadata
	if err := json.Unmarshal(data, &m); err != nil {
		return Metadata{}, fmt.Errorf("packagevessel: parsing metadata: %w", err)
	}
	switch {
	case m.Name == "":
		return Metadata{}, fmt.Errorf("packagevessel: metadata without a name")
	case m.Version < 0:
		return Metadata{}, fmt.Errorf("packagevessel: metadata %s: negative version %d", m.Name, m.Version)
	case m.Size <= 0:
		return Metadata{}, fmt.Errorf("packagevessel: metadata %s@%d: size %d", m.Name, m.Version, m.Size)
	}
	if _, err := m.ManifestDigest(); err != nil {
		return Metadata{}, fmt.Errorf("packagevessel: metadata %s@%d: %w", m.Name, m.Version, err)
	}
	return m, nil
}

// ---- Package: what a publisher hands to the registry ----

// Package is the publisher-side content of one version.
type Package struct {
	Name    string
	Version int64
	Chunks  []*blob.Chunk
}

// Size is the total logical size.
func (p Package) Size() int64 {
	var n int64
	for _, c := range p.Chunks {
		n += int64(c.Size())
	}
	return n
}

// SyntheticPackage builds a deterministic package of the given logical
// size: chunk i's content depends on (name, seed, i) but NOT on the
// version, so a mutated successor built with NextVersion shares every
// unchanged chunk's digest with its predecessor — exactly how a real
// model delta behaves after content-defined chunking.
func SyntheticPackage(name string, version int64, size, chunkSize int, seed uint64) Package {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	p := Package{Name: name, Version: version}
	for off, i := 0, 0; off < size; off, i = off+chunkSize, i+1 {
		logical := chunkSize
		if size-off < chunkSize {
			logical = size - off
		}
		data := []byte(fmt.Sprintf("%s|%x|%d", name, seed, i))
		p.Chunks = append(p.Chunks, blob.NewChunk(data, logical))
	}
	return p
}

// NextVersion derives a successor version that rewrites a deterministic
// changedFrac fraction of the chunks (at least one) and keeps the rest
// byte-identical — the delta-publish scenario content addressing exists
// for.
func NextVersion(p Package, version int64, changedFrac float64, seed uint64) Package {
	n := len(p.Chunks)
	changed := int(changedFrac * float64(n))
	if changed < 1 {
		changed = 1
	}
	if changed > n {
		changed = n
	}
	next := Package{Name: p.Name, Version: version, Chunks: make([]*blob.Chunk, n)}
	copy(next.Chunks, p.Chunks)
	rng := stats.NewRNG(seed ^ uint64(version))
	for _, i := range rng.Perm(n)[:changed] {
		data := []byte(fmt.Sprintf("%s|%x|%d|v%d", p.Name, seed, i, version))
		next.Chunks[i] = blob.NewChunk(data, p.Chunks[i].Size())
	}
	return next
}

// Manifest lists the package's chunk references in order.
func (p Package) Manifest() blob.Manifest {
	m := blob.Manifest{Name: p.Name, Version: p.Version}
	for _, c := range p.Chunks {
		m.Chunks = append(m.Chunks, blob.Ref{Digest: c.Digest(), Size: c.Size()})
	}
	return m
}

// ---- Tags: the mutable namespace over immutable versions ----

// KnownTags is the tag namespace: latest moves on publish, canary and
// prod move only through explicit promotion.
var KnownTags = []string{"latest", "canary", "prod"}

// TagRecord is the small config artifact a promotion writes: it binds a
// tag to an immutable (version, manifest digest) pair. Landing one
// through the landing strip is the promotion.
type TagRecord struct {
	Name     string `json:"name"`
	Tag      string `json:"tag"`
	Version  int64  `json:"version"`
	Manifest string `json:"manifest"`
}

// Encode renders the tag artifact.
func (t TagRecord) Encode() ([]byte, error) {
	b, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("packagevessel: encoding tag %s/%s: %w", t.Name, t.Tag, err)
	}
	return b, nil
}

// ParseTagRecord decodes and validates a tag artifact.
func ParseTagRecord(data []byte) (TagRecord, error) {
	var t TagRecord
	if err := json.Unmarshal(data, &t); err != nil {
		return TagRecord{}, fmt.Errorf("packagevessel: parsing tag record: %w", err)
	}
	if t.Name == "" || t.Tag == "" {
		return TagRecord{}, fmt.Errorf("packagevessel: tag record missing name or tag")
	}
	if t.Version <= 0 {
		return TagRecord{}, fmt.Errorf("packagevessel: tag %s/%s: version %d", t.Name, t.Tag, t.Version)
	}
	if !validTag(t.Tag) {
		return TagRecord{}, fmt.Errorf("packagevessel: tag %s/%s: unknown tag (namespace: %s)",
			t.Name, t.Tag, strings.Join(KnownTags, ", "))
	}
	return t, nil
}

func validTag(tag string) bool {
	for _, t := range KnownTags {
		if t == tag {
			return true
		}
	}
	return false
}

// TagPath is where a package's tag record lives in the config tree.
func TagPath(name, tag string) string {
	return "packages/" + name + "/" + tag + ".vessel.json"
}

// ParseTagPath inverts TagPath.
func ParseTagPath(path string) (name, tag string, ok bool) {
	rest, found := strings.CutPrefix(path, "packages/")
	if !found {
		return "", "", false
	}
	i := strings.LastIndexByte(rest, '/')
	if i <= 0 {
		return "", "", false
	}
	tag, found = strings.CutSuffix(rest[i+1:], ".vessel.json")
	if !found || tag == "" {
		return "", "", false
	}
	return rest[:i], tag, true
}

// ---- Registry: the authoritative store + tag authority ----

// PublishStats accounts one Publish call.
type PublishStats struct {
	NewChunks   int
	DedupChunks int
	NewBytes    int64
	DedupBytes  int64
}

// Registry is the storage system holding the authoritative copy of every
// published package, keyed by content digest, plus the tag namespace. It
// is a simnet node serving manifest and chunk fetches, and the first seed
// of every swarm.
type Registry struct {
	id      simnet.NodeID
	net     *simnet.Network
	tracker simnet.NodeID
	store   *blob.Store
	tags    map[string]map[string]int64 // name -> tag -> version
	obs     *obs.Registry
	last    PublishStats

	// ChunksServed counts chunks served (the load P2P is meant to shed).
	ChunksServed uint64
}

// NewRegistry creates the registry node. tracker is the swarm coordinator
// Publish seeds.
func NewRegistry(net *simnet.Network, id simnet.NodeID, p simnet.Placement, tracker simnet.NodeID) *Registry {
	r := &Registry{
		id: id, net: net, tracker: tracker,
		store: blob.NewStore(),
		tags:  make(map[string]map[string]int64),
	}
	net.AddNode(id, p, r)
	return r
}

// SetObs attaches the metrics registry (nil-safe).
func (r *Registry) SetObs(reg *obs.Registry) { r.obs = reg }

// ID is the registry's node id.
func (r *Registry) ID() simnet.NodeID { return r.id }

// Tracker is the swarm coordinator this registry seeds.
func (r *Registry) Tracker() simnet.NodeID { return r.tracker }

// Store exposes the registry's blob store (read-mostly; used by status
// views and the promotion gate).
func (r *Registry) Store() *blob.Store { return r.store }

// Publish registers one package version: chunks absent from the store are
// added, already-known digests are deduped (counted, not re-stored), the
// manifest is recorded, the swarm coordinator is seeded with the
// registry's digests, and the "latest" tag advances. Returns the manifest
// whose digest the Configerator metadata should carry.
func (r *Registry) Publish(p Package) (blob.Manifest, error) {
	if p.Name == "" {
		return blob.Manifest{}, fmt.Errorf("packagevessel: publish without a name")
	}
	if p.Version <= 0 {
		return blob.Manifest{}, fmt.Errorf("packagevessel: publish %s: version %d (must be > 0)", p.Name, p.Version)
	}
	if len(p.Chunks) == 0 {
		return blob.Manifest{}, fmt.Errorf("packagevessel: publish %s@%d: empty package", p.Name, p.Version)
	}
	m := p.Manifest()
	if prev, ok := r.store.Manifest(p.Name, p.Version); ok {
		if prev.Digest() != m.Digest() {
			return blob.Manifest{}, fmt.Errorf("packagevessel: publish %s@%d: version already published with different content", p.Name, p.Version)
		}
		return prev, nil // idempotent republish
	}
	var st PublishStats
	for _, c := range p.Chunks {
		if r.store.Put(c) {
			st.NewChunks++
			st.NewBytes += int64(c.Size())
		} else {
			st.DedupChunks++
			st.DedupBytes += int64(c.Size())
		}
	}
	r.obs.Add("vessel.chunks.dedup", int64(st.DedupChunks))
	r.obs.Add("vessel.bytes.saved", st.DedupBytes)
	r.store.Begin(m, string(r.id), string(r.tracker))
	if err := r.store.Commit(m); err != nil {
		return blob.Manifest{}, err
	}
	r.last = st
	r.setTag(p.Name, "latest", p.Version)

	// Seed the swarm: advertise digests, not (name, version, index)
	// triples — a digest shared with an older version is already
	// advertised, which is what makes cross-version dedup visible to
	// rarest-first scheduling.
	digests := make([]blob.Digest, 0, len(m.Chunks))
	for d := range m.Distinct() {
		digests = append(digests, d)
	}
	sort.Slice(digests, func(i, j int) bool { return digests[i] < digests[j] })
	r.net.Send(r.id, r.tracker, msgAnnounce{Digests: digests})
	return m, nil
}

// LastPublish returns the dedup accounting of the most recent Publish.
func (r *Registry) LastPublish() PublishStats { return r.last }

// HasVersion reports whether (name, version) has been published.
func (r *Registry) HasVersion(name string, version int64) bool {
	return r.store.Complete(name, version)
}

// CurrentTag returns the version a tag currently points at.
func (r *Registry) CurrentTag(name, tag string) (int64, bool) {
	v, ok := r.tags[name][tag]
	return v, ok
}

// Tags returns a copy of the package's tag map.
func (r *Registry) Tags(name string) map[string]int64 {
	out := make(map[string]int64, len(r.tags[name]))
	for t, v := range r.tags[name] {
		out[t] = v
	}
	return out
}

// Resolve returns the manifest a tag points at.
func (r *Registry) Resolve(name, tag string) (blob.Manifest, bool) {
	v, ok := r.tags[name][tag]
	if !ok {
		return blob.Manifest{}, false
	}
	return r.store.Manifest(name, v)
}

// Promote validates a tag move and returns the TagRecord to land through
// the landing strip — the promotion IS that metadata write; the registry
// applies it only when ApplyTag is called after the change lands. Rules:
// the version must be published, the tag must be in the namespace, and
// prod promotions must name the version currently tagged canary (staged
// rollout: nothing reaches prod without passing through canary).
func (r *Registry) Promote(name, tag string, version int64) (TagRecord, error) {
	if !validTag(tag) {
		return TagRecord{}, fmt.Errorf("packagevessel: promote %s: unknown tag %q (namespace: %s)",
			name, tag, strings.Join(KnownTags, ", "))
	}
	m, ok := r.store.Manifest(name, version)
	if !ok {
		return TagRecord{}, fmt.Errorf("packagevessel: promote %s/%s: version %d not published", name, tag, version)
	}
	if tag == "prod" {
		canary, ok := r.CurrentTag(name, "canary")
		if !ok || canary != version {
			return TagRecord{}, fmt.Errorf("packagevessel: promote %s/prod: version %d is not the current canary (staged rollout requires canary first)", name, version)
		}
	}
	return TagRecord{Name: name, Tag: tag, Version: version, Manifest: m.Digest().String()}, nil
}

// ApplyTag applies a landed promotion. It re-validates against the
// current registry state (the strip gate already checked; state may have
// moved between validation and land).
func (r *Registry) ApplyTag(rec TagRecord) error {
	m, ok := r.store.Manifest(rec.Name, rec.Version)
	if !ok {
		return fmt.Errorf("packagevessel: apply tag %s/%s: version %d not published", rec.Name, rec.Tag, rec.Version)
	}
	if got := m.Digest().String(); rec.Manifest != "" && rec.Manifest != got {
		return fmt.Errorf("packagevessel: apply tag %s/%s: manifest digest %s does not match published %s",
			rec.Name, rec.Tag, rec.Manifest, got)
	}
	r.setTag(rec.Name, rec.Tag, rec.Version)
	return nil
}

func (r *Registry) setTag(name, tag string, version int64) {
	if r.tags[name] == nil {
		r.tags[name] = make(map[string]int64)
	}
	r.tags[name][tag] = version
}

// PackageNames lists published package names, sorted.
func (r *Registry) PackageNames() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range r.store.Manifests() {
		if !seen[m.Name] {
			seen[m.Name] = true
			out = append(out, m.Name)
		}
	}
	sort.Strings(out)
	return out
}

// HandleMessage implements simnet.Handler: the registry serves manifest
// and chunk fetches.
func (r *Registry) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case msgGetManifest:
		reply := msgManifest{Name: m.Name, Version: m.Version}
		if man, ok := r.store.Manifest(m.Name, m.Version); ok {
			if data, err := man.Encode(); err == nil {
				reply.OK = true
				reply.Data = data
			}
		}
		ctx.SendSized(from, reply, len(reply.Data))
	case msgGetChunk:
		reply := msgChunk{Digest: m.Digest}
		size := 0
		if c, ok := r.store.Get(m.Digest); ok {
			reply.OK = true
			reply.Data = c.Data()
			reply.Size = c.Size()
			size = c.Size()
			r.ChunksServed++
		}
		ctx.SendSized(from, reply, size)
	}
}

// Upload is the v1 positional API: build a synthetic package of the given
// size, publish it, and return the encoded-metadata record.
//
// Deprecated: use Publish with an explicit Package; Upload remains for
// one release so external callers can migrate. Synthetic content is
// seeded from the package name, so repeated Uploads of the same name
// dedup across versions just like real content.
func (r *Registry) Upload(name string, version int64, size, chunkSize int) (Metadata, error) {
	p := SyntheticPackage(name, version, size, chunkSize, stats.Hash64(name))
	m, err := r.Publish(p)
	if err != nil {
		return Metadata{}, err
	}
	return MetadataFor(m, r.id, r.tracker), nil
}

// ---- Wire messages ----

// msgAnnounce advertises digests a node now holds (seeds on publish;
// agents piggyback announces on msgWant instead).
type msgAnnounce struct {
	Digests []blob.Digest
	// Complete marks the announcer as holding every advertised digest
	// durably (informational; rarity counting treats all holders alike).
	Complete bool
}

// msgWant is the agent -> tracker round: announce newly verified digests
// (Have), ask for up to Max grants covering Need, excluding Avoid peers
// (quarantined by the requester after digest mismatches).
type msgWant struct {
	Have  []blob.Digest
	Need  []blob.Digest
	Max   int
	Avoid []simnet.NodeID
}

// grant assigns one digest fetch to one holder.
type grant struct {
	Digest blob.Digest
	Peer   simnet.NodeID
}

// msgAssign is the tracker's reply: zero or more grants; Retry asks the
// agent to back off and re-request (all holders busy or unknown).
type msgAssign struct {
	Grants []grant
	Retry  bool
}

// msgGetManifest fetches a manifest by (name, version).
type msgGetManifest struct {
	Name    string
	Version int64
}

// msgManifest is the manifest reply; receivers verify the payload's
// digest against the metadata's ManifestDigest before trusting it.
type msgManifest struct {
	Name    string
	Version int64
	Data    []byte
	OK      bool
}

// msgGetChunk fetches one chunk by digest.
type msgGetChunk struct {
	Digest blob.Digest
}

// msgChunk carries chunk bytes; Size is the logical size charged on the
// wire.
type msgChunk struct {
	Digest blob.Digest
	Data   []byte
	Size   int
	OK     bool
}

// msgChunkTimeout reclaims a fetch slot whose peer went silent.
type msgChunkTimeout struct {
	Digest blob.Digest
}

// msgWantRetry re-requests grants after a Retry backoff.
type msgWantRetry struct {
	Name string
}

// msgManifestRetry re-requests a manifest fetch that went unanswered.
type msgManifestRetry struct {
	Name    string
	Version int64
}

// msgTrackerTick refills the tracker's per-holder grant budgets.
type msgTrackerTick struct{}
