// Package packagevessel implements PackageVessel (§3.5): distribution of
// large configs (e.g. GBs of machine-learning models) by separating a
// config's small metadata from its bulk content.
//
// When a large config changes, its bulk content is uploaded to a storage
// system and only the metadata — name, version, size, chunk count, where
// to fetch — is stored in Configerator and pushed through Zeus's
// distribution tree with the usual consistency guarantee. On receiving the
// metadata update, each subscribed server fetches the bulk content with a
// BitTorrent-style protocol: peers that need the same config exchange
// chunks among themselves instead of hammering the central storage, and
// peer selection is locality aware, preferring peers in the same cluster.
// The metadata's consistency drives the bulk content's consistency: a
// server only accepts and serves chunks for the exact version named by its
// current metadata.
package packagevessel

import (
	"encoding/json"
	"fmt"
	"time"

	"configerator/internal/simnet"
)

// Metadata is the small record stored in Configerator for a large config.
type Metadata struct {
	Name      string `json:"name"`
	Version   int64  `json:"version"`
	Size      int    `json:"size"`
	ChunkSize int    `json:"chunk_size"`
	// Storage is the node holding the authoritative copy.
	Storage simnet.NodeID `json:"storage"`
	// Tracker coordinates the swarm.
	Tracker simnet.NodeID `json:"tracker"`
}

// NumChunks derives the chunk count.
func (m Metadata) NumChunks() int {
	if m.ChunkSize <= 0 {
		return 0
	}
	return (m.Size + m.ChunkSize - 1) / m.ChunkSize
}

// Encode renders the metadata artifact (what Configerator stores).
func (m Metadata) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("packagevessel: encoding metadata: " + err.Error())
	}
	return b
}

// ParseMetadata decodes a metadata artifact.
func ParseMetadata(data []byte) (Metadata, error) {
	var m Metadata
	if err := json.Unmarshal(data, &m); err != nil {
		return Metadata{}, fmt.Errorf("packagevessel: parsing metadata: %w", err)
	}
	if m.Name == "" || m.Size <= 0 || m.ChunkSize <= 0 {
		return Metadata{}, fmt.Errorf("packagevessel: invalid metadata %+v", m)
	}
	return m, nil
}

// DefaultChunkSize is 1 MiB, a typical BitTorrent piece size.
const DefaultChunkSize = 1 << 20

// swarmKey identifies one (package, version) swarm.
type swarmKey struct {
	name    string
	version int64
}

// ---- Messages ----

type msgHave struct {
	Name    string
	Version int64
	Index   int
	// Complete marks the announcer as a full seed.
	Complete bool
}

type msgNext struct {
	Name    string
	Version int64
	Missing []int
}

type msgAssign struct {
	Name    string
	Version int64
	Index   int
	Peer    simnet.NodeID
	// None reports that no chunk could be assigned (all missing chunks
	// momentarily unavailable); the agent retries after a backoff.
	None bool
}

type msgGetChunk struct {
	Name    string
	Version int64
	Index   int
}

type msgChunk struct {
	Name    string
	Version int64
	Index   int
	OK      bool
}

type msgFetchRetry struct {
	Name    string
	Version int64
}

type msgChunkTimeout struct {
	Name    string
	Version int64
	Index   int
}

// chunkTimeout bounds one chunk fetch before the slot is reclaimed (the
// assigned peer may have crashed mid-transfer).
const chunkTimeout = 30 * time.Second

// ---- Tracker ----

// Tracker coordinates swarms: it knows which agents hold which chunks and
// assigns each request the rarest missing chunk from the closest holder.
type Tracker struct {
	id  simnet.NodeID
	net *simnet.Network
	// holders[swarm][chunk] -> nodes that have it.
	holders map[swarmKey][]map[simnet.NodeID]bool

	// Assignments counts chunk assignments handed out.
	Assignments uint64
}

// NewTracker creates a tracker node.
func NewTracker(net *simnet.Network, id simnet.NodeID, p simnet.Placement) *Tracker {
	t := &Tracker{id: id, net: net, holders: make(map[swarmKey][]map[simnet.NodeID]bool)}
	net.AddNode(id, p, t)
	return t
}

func (t *Tracker) swarm(name string, version int64, chunks int) []map[simnet.NodeID]bool {
	key := swarmKey{name, version}
	s, ok := t.holders[key]
	if !ok {
		s = make([]map[simnet.NodeID]bool, chunks)
		for i := range s {
			s[i] = make(map[simnet.NodeID]bool)
		}
		t.holders[key] = s
	}
	return s
}

// RegisterSeed marks a node as holding every chunk (the storage system
// after an upload).
func (t *Tracker) RegisterSeed(name string, version int64, chunks int, seed simnet.NodeID) {
	s := t.swarm(name, version, chunks)
	for i := range s {
		s[i][seed] = true
	}
}

// HandleMessage implements simnet.Handler.
func (t *Tracker) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case msgHave:
		key := swarmKey{m.Name, m.Version}
		s, ok := t.holders[key]
		if !ok || m.Index >= len(s) {
			return
		}
		s[m.Index][from] = true
	case msgNext:
		t.assign(ctx, from, m)
	}
}

// assign picks the rarest available missing chunk and its closest holder.
func (t *Tracker) assign(ctx *simnet.Context, agent simnet.NodeID, m msgNext) {
	key := swarmKey{m.Name, m.Version}
	s, ok := t.holders[key]
	if !ok {
		ctx.Send(agent, msgAssign{Name: m.Name, Version: m.Version, None: true})
		return
	}
	agentPlace := t.net.Placement(agent)
	// Rarest-first with random tie-breaking: a deterministic tie-break
	// would put every agent in lockstep on the same chunk, so nobody ever
	// holds anything a peer is missing and the storage node serves
	// everything. Randomizing among the rarest chunks decorrelates the
	// swarm, exactly why BitTorrent randomizes piece selection.
	minRarity := int(^uint(0) >> 1)
	for _, idx := range m.Missing {
		if idx < 0 || idx >= len(s) || len(s[idx]) == 0 {
			continue
		}
		if r := len(s[idx]); r < minRarity {
			minRarity = r
		}
	}
	var candidates []int
	for _, idx := range m.Missing {
		if idx < 0 || idx >= len(s) || len(s[idx]) == 0 {
			continue
		}
		// Anything within 2x of the rarest is a candidate; the band keeps
		// selection spread wide in the early all-tied phase.
		if len(s[idx]) <= 2*minRarity {
			candidates = append(candidates, idx)
		}
	}
	t.net.RNG().Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	for _, idx := range candidates {
		peer := t.closestHolder(s[idx], agent, agentPlace)
		if peer == "" {
			continue
		}
		t.Assignments++
		ctx.Send(agent, msgAssign{Name: m.Name, Version: m.Version, Index: idx, Peer: peer})
		return
	}
	ctx.Send(agent, msgAssign{Name: m.Name, Version: m.Version, None: true})
}

// closestHolder prefers same-cluster, then same-region, then anything —
// the locality awareness of §3.5.
func (t *Tracker) closestHolder(holders map[simnet.NodeID]bool, agent simnet.NodeID, ap simnet.Placement) simnet.NodeID {
	var cluster, region, far []simnet.NodeID
	for h := range holders {
		if h == agent || t.net.IsDown(h) {
			continue
		}
		hp := t.net.Placement(h)
		switch {
		case hp.Region == ap.Region && hp.Cluster == ap.Cluster:
			cluster = append(cluster, h)
		case hp.Region == ap.Region:
			region = append(region, h)
		default:
			far = append(far, h)
		}
	}
	pick := func(list []simnet.NodeID) simnet.NodeID {
		return list[t.net.RNG().Intn(len(list))]
	}
	switch {
	case len(cluster) > 0:
		return pick(cluster)
	case len(region) > 0:
		return pick(region)
	case len(far) > 0:
		return pick(far)
	}
	return ""
}

// ---- Storage ----

// Storage is the central storage system holding uploaded bulk content.
type Storage struct {
	id       simnet.NodeID
	packages map[swarmKey]Metadata

	// ChunksServed counts chunks served (the load P2P is meant to shed).
	ChunksServed uint64
}

// NewStorage creates a storage node.
func NewStorage(net *simnet.Network, id simnet.NodeID, p simnet.Placement) *Storage {
	s := &Storage{id: id, packages: make(map[swarmKey]Metadata)}
	net.AddNode(id, p, s)
	return s
}

// Upload stores a package version and seeds the tracker. It returns the
// metadata to publish through Configerator.
func (s *Storage) Upload(tracker *Tracker, name string, version int64, size, chunkSize int, trackerID simnet.NodeID) Metadata {
	m := Metadata{Name: name, Version: version, Size: size, ChunkSize: chunkSize,
		Storage: s.id, Tracker: trackerID}
	s.packages[swarmKey{name, version}] = m
	tracker.RegisterSeed(name, version, m.NumChunks(), s.id)
	return m
}

// HandleMessage implements simnet.Handler.
func (s *Storage) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	if m, ok := msg.(msgGetChunk); ok {
		meta, have := s.packages[swarmKey{m.Name, m.Version}]
		reply := msgChunk{Name: m.Name, Version: m.Version, Index: m.Index}
		size := 0
		if have && m.Index >= 0 && m.Index < meta.NumChunks() {
			reply.OK = true
			size = meta.ChunkSize
			s.ChunksServed++
		}
		ctx.SendSized(from, reply, size)
	}
}

// ---- Agent ----

// download tracks one in-progress package fetch.
type download struct {
	meta      Metadata
	have      []bool
	remaining int
	inflight  map[int]bool
	started   time.Time
}

// Agent runs on every subscribed server: it receives metadata updates (via
// the Configerator proxy subscription) and swarms the bulk content.
type Agent struct {
	id  simnet.NodeID
	net *simnet.Network
	// window is the number of concurrent chunk fetches.
	window int

	downloads map[string]*download // by package name (current version only)
	complete  map[string]Metadata  // finished packages

	// onComplete fires when a package finishes.
	onComplete func(meta Metadata, took time.Duration)

	// Stats.
	ChunksFromPeers   uint64
	ChunksFromStorage uint64
	ChunksSameCluster uint64
	ChunksSameRegion  uint64
	ChunksCrossRegion uint64
}

// NewAgent creates an agent node.
func NewAgent(net *simnet.Network, id simnet.NodeID, p simnet.Placement) *Agent {
	a := &Agent{
		id: id, net: net, window: 4,
		downloads: make(map[string]*download),
		complete:  make(map[string]Metadata),
	}
	net.AddNode(id, p, a)
	return a
}

// OnComplete registers the completion callback.
func (a *Agent) OnComplete(fn func(meta Metadata, took time.Duration)) { a.onComplete = fn }

// Has reports whether the agent holds the complete package version.
func (a *Agent) Has(name string, version int64) bool {
	m, ok := a.complete[name]
	return ok && m.Version == version
}

// OnMetadata starts (or restarts) a download when the subscribed metadata
// changes. Stale downloads for older versions are abandoned: consistency
// of the metadata drives consistency of the bulk content.
func (a *Agent) OnMetadata(data []byte) {
	meta, err := ParseMetadata(data)
	if err != nil {
		return
	}
	if cur, ok := a.complete[meta.Name]; ok && cur.Version >= meta.Version {
		return
	}
	if d, ok := a.downloads[meta.Name]; ok && d.meta.Version >= meta.Version {
		return
	}
	d := &download{
		meta:      meta,
		have:      make([]bool, meta.NumChunks()),
		remaining: meta.NumChunks(),
		inflight:  make(map[int]bool),
		started:   a.net.Now(),
	}
	a.downloads[meta.Name] = d
	ctx := simnet.MakeContext(a.net, a.id)
	for i := 0; i < a.window; i++ {
		a.requestNext(&ctx, d)
	}
}

func (a *Agent) requestNext(ctx *simnet.Context, d *download) {
	if d.remaining == 0 {
		return
	}
	missing := make([]int, 0, d.remaining)
	for i, have := range d.have {
		if !have && !d.inflight[i] {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return
	}
	ctx.Send(d.meta.Tracker, msgNext{Name: d.meta.Name, Version: d.meta.Version, Missing: missing})
}

// HandleMessage implements simnet.Handler.
func (a *Agent) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case msgAssign:
		d := a.currentDownload(m.Name, m.Version)
		if d == nil {
			return
		}
		if m.None {
			ctx.SetTimer(2*time.Second, msgFetchRetry{Name: m.Name, Version: m.Version})
			return
		}
		if d.have[m.Index] || d.inflight[m.Index] {
			a.requestNext(ctx, d) // race with another slot; move on
			return
		}
		d.inflight[m.Index] = true
		ctx.Send(m.Peer, msgGetChunk{Name: m.Name, Version: m.Version, Index: m.Index})
		ctx.SetTimer(chunkTimeout, msgChunkTimeout{Name: m.Name, Version: m.Version, Index: m.Index})
	case msgChunkTimeout:
		if d := a.currentDownload(m.Name, m.Version); d != nil && d.inflight[m.Index] {
			delete(d.inflight, m.Index)
			a.requestNext(ctx, d)
		}
	case msgFetchRetry:
		if d := a.currentDownload(m.Name, m.Version); d != nil {
			a.requestNext(ctx, d)
		}
	case msgGetChunk:
		a.serveChunk(ctx, from, m)
	case msgChunk:
		a.onChunk(ctx, from, m)
	}
}

func (a *Agent) currentDownload(name string, version int64) *download {
	d, ok := a.downloads[name]
	if !ok || d.meta.Version != version {
		return nil
	}
	return d
}

// serveChunk uploads a chunk to a peer — but only for the exact version we
// hold, complete or in progress.
func (a *Agent) serveChunk(ctx *simnet.Context, from simnet.NodeID, m msgGetChunk) {
	reply := msgChunk{Name: m.Name, Version: m.Version, Index: m.Index}
	size := 0
	if meta, ok := a.complete[m.Name]; ok && meta.Version == m.Version &&
		m.Index >= 0 && m.Index < meta.NumChunks() {
		reply.OK = true
		size = meta.ChunkSize
	} else if d := a.currentDownload(m.Name, m.Version); d != nil &&
		m.Index >= 0 && m.Index < len(d.have) && d.have[m.Index] {
		reply.OK = true
		size = d.meta.ChunkSize
	}
	ctx.SendSized(from, reply, size)
}

func (a *Agent) onChunk(ctx *simnet.Context, from simnet.NodeID, m msgChunk) {
	d := a.currentDownload(m.Name, m.Version)
	if d == nil {
		return
	}
	delete(d.inflight, m.Index)
	if !m.OK {
		a.requestNext(ctx, d)
		return
	}
	if !d.have[m.Index] {
		d.have[m.Index] = true
		d.remaining--
		// Account locality.
		if from == d.meta.Storage {
			a.ChunksFromStorage++
		} else {
			a.ChunksFromPeers++
		}
		ap := a.net.Placement(a.id)
		fp := a.net.Placement(from)
		switch {
		case ap.Region == fp.Region && ap.Cluster == fp.Cluster:
			a.ChunksSameCluster++
		case ap.Region == fp.Region:
			a.ChunksSameRegion++
		default:
			a.ChunksCrossRegion++
		}
		ctx.Send(d.meta.Tracker, msgHave{Name: m.Name, Version: m.Version, Index: m.Index})
	}
	if d.remaining == 0 {
		a.complete[m.Name] = d.meta
		delete(a.downloads, m.Name)
		ctx.Send(d.meta.Tracker, msgHave{Name: m.Name, Version: m.Version, Index: len(d.have) - 1, Complete: true})
		if a.onComplete != nil {
			a.onComplete(d.meta, ctx.Now().Sub(d.started))
		}
		return
	}
	a.requestNext(ctx, d)
}

// FetchCentralOnly is the ablation baseline: fetch every chunk directly
// from storage, no peer exchange. Used by BenchmarkAblation_P2PvsCentral.
func (a *Agent) FetchCentralOnly(data []byte) {
	meta, err := ParseMetadata(data)
	if err != nil {
		return
	}
	d := &download{
		meta:      meta,
		have:      make([]bool, meta.NumChunks()),
		remaining: meta.NumChunks(),
		inflight:  make(map[int]bool),
		started:   a.net.Now(),
	}
	// Mark the tracker as unused by pointing assignments straight at
	// storage: we simply issue all chunk requests to storage directly.
	a.downloads[meta.Name] = d
	ctx := simnet.MakeContext(a.net, a.id)
	for i := 0; i < meta.NumChunks(); i++ {
		d.inflight[i] = true
		ctx.Send(meta.Storage, msgGetChunk{Name: meta.Name, Version: meta.Version, Index: i})
	}
}
