package packagevessel

import (
	"fmt"
	"testing"
	"time"

	"configerator/internal/simnet"
)

// swarmRig builds a storage node, tracker, and agents spread across
// clusters with realistic (1 Gbit/s) per-server bandwidth.
type swarmRig struct {
	net     *simnet.Network
	storage *Storage
	tracker *Tracker
	agents  []*Agent
}

const serverBps = 1.25e8 // 1 Gbit/s

func newSwarm(t *testing.T, agents int, clusters int, seed uint64) *swarmRig {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), seed)
	r := &swarmRig{net: net}
	r.storage = NewStorage(net, "storage", simnet.Placement{Region: "us", Cluster: "store"})
	net.SetBandwidth("storage", serverBps, serverBps)
	r.tracker = NewTracker(net, "tracker", simnet.Placement{Region: "us", Cluster: "store"})
	for i := 0; i < agents; i++ {
		cluster := fmt.Sprintf("c%d", i%clusters)
		region := "us"
		if i%clusters >= clusters/2 && clusters > 1 {
			region = "eu"
		}
		id := simnet.NodeID(fmt.Sprintf("srv-%d", i))
		a := NewAgent(net, id, simnet.Placement{Region: region, Cluster: cluster})
		net.SetBandwidth(id, serverBps, serverBps)
		r.agents = append(r.agents, a)
	}
	return r
}

func (r *swarmRig) publish(size int) Metadata {
	return r.storage.Upload(r.tracker, "model", 1, size, DefaultChunkSize, "tracker")
}

func TestMetadataRoundTrip(t *testing.T) {
	m := Metadata{Name: "model", Version: 3, Size: 10 << 20, ChunkSize: DefaultChunkSize,
		Storage: "storage", Tracker: "tracker"}
	got, err := ParseMetadata(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip: %+v != %+v", got, m)
	}
	if m.NumChunks() != 10 {
		t.Errorf("NumChunks = %d", m.NumChunks())
	}
	// 10MB + 1 byte -> 11 chunks.
	m.Size++
	if m.NumChunks() != 11 {
		t.Errorf("NumChunks = %d", m.NumChunks())
	}
}

func TestParseMetadataRejectsGarbage(t *testing.T) {
	for _, bad := range []string{`{`, `{}`, `{"name":"x"}`, `{"name":"x","size":-1,"chunk_size":1}`} {
		if _, err := ParseMetadata([]byte(bad)); err == nil {
			t.Errorf("ParseMetadata(%q) succeeded", bad)
		}
	}
}

func TestSingleAgentDownload(t *testing.T) {
	r := newSwarm(t, 1, 1, 1)
	meta := r.publish(8 << 20) // 8 MB
	var took time.Duration
	r.agents[0].OnComplete(func(m Metadata, d time.Duration) { took = d })
	r.agents[0].OnMetadata(meta.Encode())
	r.net.RunFor(5 * time.Minute)
	if !r.agents[0].Has("model", 1) {
		t.Fatal("download never completed")
	}
	if took <= 0 || took > time.Minute {
		t.Errorf("took = %v", took)
	}
	if r.agents[0].ChunksFromStorage != 8 {
		t.Errorf("ChunksFromStorage = %d, want 8", r.agents[0].ChunksFromStorage)
	}
}

func TestSwarmAllComplete(t *testing.T) {
	r := newSwarm(t, 30, 3, 2)
	meta := r.publish(16 << 20)
	completed := 0
	for _, a := range r.agents {
		a.OnComplete(func(Metadata, time.Duration) { completed++ })
		a.OnMetadata(meta.Encode())
	}
	r.net.RunFor(10 * time.Minute)
	if completed != 30 {
		t.Fatalf("completed = %d of 30", completed)
	}
	// P2P must dominate: the storage served far fewer chunks than the
	// total demanded (30 agents x 16 chunks = 480).
	if r.storage.ChunksServed > 200 {
		t.Errorf("storage served %d chunks; P2P not offloading", r.storage.ChunksServed)
	}
	var fromPeers uint64
	for _, a := range r.agents {
		fromPeers += a.ChunksFromPeers
	}
	if fromPeers == 0 {
		t.Error("no peer-to-peer chunk exchange happened")
	}
}

func TestLocalityPreference(t *testing.T) {
	r := newSwarm(t, 40, 4, 3)
	meta := r.publish(16 << 20)
	for _, a := range r.agents {
		a.OnMetadata(meta.Encode())
	}
	r.net.RunFor(10 * time.Minute)
	var sameCluster, crossRegion, total uint64
	for _, a := range r.agents {
		sameCluster += a.ChunksSameCluster
		crossRegion += a.ChunksCrossRegion
		total += a.ChunksSameCluster + a.ChunksSameRegion + a.ChunksCrossRegion
	}
	if total == 0 {
		t.Fatal("no chunks transferred")
	}
	// Same-cluster exchange must dominate cross-region (storage fetches
	// count as cross-region for eu agents, so allow some).
	if float64(sameCluster)/float64(total) < 0.5 {
		t.Errorf("same-cluster fraction = %.2f, want > 0.5 (locality-aware selection)",
			float64(sameCluster)/float64(total))
	}
	_ = crossRegion
}

func TestVersionConsistency(t *testing.T) {
	r := newSwarm(t, 10, 2, 4)
	metaV1 := r.publish(8 << 20)
	for _, a := range r.agents {
		a.OnMetadata(metaV1.Encode())
	}
	// Let the swarm get partway, then publish v2: agents must abandon v1
	// and converge on v2 only.
	r.net.RunFor(2 * time.Second)
	metaV2 := r.storage.Upload(r.tracker, "model", 2, 8<<20, DefaultChunkSize, "tracker")
	for _, a := range r.agents {
		a.OnMetadata(metaV2.Encode())
	}
	r.net.RunFor(10 * time.Minute)
	for i, a := range r.agents {
		if !a.Has("model", 2) {
			t.Fatalf("agent %d did not converge on v2", i)
		}
		if a.Has("model", 1) {
			t.Fatalf("agent %d reports completing the abandoned v1", i)
		}
	}
}

func TestStaleMetadataIgnored(t *testing.T) {
	r := newSwarm(t, 1, 1, 5)
	metaV2 := r.storage.Upload(r.tracker, "model", 2, 4<<20, DefaultChunkSize, "tracker")
	a := r.agents[0]
	a.OnMetadata(metaV2.Encode())
	r.net.RunFor(5 * time.Minute)
	if !a.Has("model", 2) {
		t.Fatal("v2 not downloaded")
	}
	// An old metadata version arriving late must not restart anything.
	metaV1 := Metadata{Name: "model", Version: 1, Size: 4 << 20, ChunkSize: DefaultChunkSize,
		Storage: "storage", Tracker: "tracker"}
	a.OnMetadata(metaV1.Encode())
	if !a.Has("model", 2) {
		t.Fatal("stale metadata clobbered the newer version")
	}
}

func TestPeerFailureMidSwarm(t *testing.T) {
	r := newSwarm(t, 12, 2, 6)
	meta := r.publish(8 << 20)
	for _, a := range r.agents {
		a.OnMetadata(meta.Encode())
	}
	r.net.RunFor(3 * time.Second)
	// Kill a quarter of the agents mid-download.
	for i := 0; i < 3; i++ {
		r.net.Fail(simnet.NodeID(fmt.Sprintf("srv-%d", i)))
	}
	r.net.RunFor(15 * time.Minute)
	for i := 3; i < 12; i++ {
		if !r.agents[i].Has("model", 1) {
			t.Fatalf("surviving agent %d never completed", i)
		}
	}
}

func TestFourMinuteClaim(t *testing.T) {
	// §3.5: "PackageVessel consistently and reliably delivers the large
	// configs to the live servers in less than four minutes" — hundreds of
	// MBs to a fleet. Scaled-down check: 64 MB to 60 servers over 1 Gbit/s
	// links must finish well under four minutes.
	if testing.Short() {
		t.Skip("swarm simulation")
	}
	r := newSwarm(t, 60, 4, 7)
	meta := r.publish(64 << 20)
	var worst time.Duration
	completed := 0
	for _, a := range r.agents {
		a.OnComplete(func(_ Metadata, d time.Duration) {
			completed++
			if d > worst {
				worst = d
			}
		})
		a.OnMetadata(meta.Encode())
	}
	r.net.RunFor(10 * time.Minute)
	if completed != 60 {
		t.Fatalf("completed = %d of 60", completed)
	}
	if worst > 4*time.Minute {
		t.Errorf("slowest server took %v, want < 4m", worst)
	}
}

func TestCentralOnlySlowerThanP2P(t *testing.T) {
	run := func(p2p bool) time.Duration {
		r := newSwarm(t, 24, 2, 8)
		meta := r.publish(32 << 20)
		var worst time.Duration
		completed := 0
		for _, a := range r.agents {
			a.OnComplete(func(_ Metadata, d time.Duration) {
				completed++
				if d > worst {
					worst = d
				}
			})
			if p2p {
				a.OnMetadata(meta.Encode())
			} else {
				a.FetchCentralOnly(meta.Encode())
			}
		}
		r.net.RunFor(2 * time.Hour)
		if completed != 24 {
			t.Fatalf("completed = %d of 24 (p2p=%v)", completed, p2p)
		}
		return worst
	}
	p2p := run(true)
	central := run(false)
	if central <= p2p {
		t.Errorf("central (%v) should be slower than p2p (%v): storage uplink is the bottleneck",
			central, p2p)
	}
}
