package packagevessel

import (
	"fmt"
	"testing"
	"time"

	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
)

// swarmRig builds a registry node, tracker, and agents spread across
// clusters with realistic (1 Gbit/s) per-server bandwidth.
type swarmRig struct {
	net      *simnet.Network
	registry *Registry
	tracker  *Tracker
	agents   []*Agent
}

const serverBps = 1.25e8 // 1 Gbit/s

func newSwarm(t *testing.T, agents int, clusters int, seed uint64) *swarmRig {
	return newSwarmBps(t, agents, clusters, seed, serverBps)
}

func newSwarmBps(t *testing.T, agents int, clusters int, seed uint64, bps float64) *swarmRig {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), seed)
	r := &swarmRig{net: net}
	r.registry = NewRegistry(net, "registry", simnet.Placement{Region: "us", Cluster: "store"}, "tracker")
	net.SetBandwidth("registry", bps, bps)
	r.tracker = NewTracker(net, "tracker", simnet.Placement{Region: "us", Cluster: "store"})
	for i := 0; i < agents; i++ {
		cluster := fmt.Sprintf("c%d", i%clusters)
		region := "us"
		if i%clusters >= clusters/2 && clusters > 1 {
			region = "eu"
		}
		id := simnet.NodeID(fmt.Sprintf("srv-%d", i))
		a := NewAgent(net, id, simnet.Placement{Region: region, Cluster: cluster}, Options{})
		net.SetBandwidth(id, bps, bps)
		r.agents = append(r.agents, a)
	}
	return r
}

// publish registers a synthetic package and returns its announce record.
func (r *swarmRig) publish(t *testing.T, name string, version int64, size int) Metadata {
	t.Helper()
	m, err := r.registry.Publish(SyntheticPackage(name, version, size, DefaultChunkSize, 42))
	if err != nil {
		t.Fatalf("publish %s@%d: %v", name, version, err)
	}
	return MetadataFor(m, r.registry.ID(), r.tracker.ID())
}

func encodeMeta(t *testing.T, m Metadata) []byte {
	t.Helper()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMetadataRoundTrip(t *testing.T) {
	m := Metadata{Name: "model", Version: 3, Size: 10 << 20,
		Manifest: blob.DigestOf([]byte("m")).String(), Registry: "registry", Tracker: "tracker"}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMetadata(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip: %+v != %+v", got, m)
	}
}

func TestParseMetadataRejectsGarbage(t *testing.T) {
	digest := blob.DigestOf([]byte("m")).String()
	for _, bad := range []string{
		`{`,
		`{}`,
		`{"name":"x"}`,
		fmt.Sprintf(`{"name":"x","version":-1,"size":1,"manifest":%q}`, digest), // negative version
		fmt.Sprintf(`{"name":"x","version":1,"size":-1,"manifest":%q}`, digest), // bad size
		`{"name":"x","version":1,"size":1,"manifest":"nothex"}`,                 // bad digest
	} {
		if _, err := ParseMetadata([]byte(bad)); err == nil {
			t.Errorf("ParseMetadata(%q) succeeded", bad)
		}
	}
}

func TestTagPathRoundTrip(t *testing.T) {
	path := TagPath("ranker", "canary")
	name, tag, ok := ParseTagPath(path)
	if !ok || name != "ranker" || tag != "canary" {
		t.Fatalf("ParseTagPath(%q) = %q, %q, %v", path, name, tag, ok)
	}
	for _, bad := range []string{"models/ranker.json", "packages/x", "packages/x/y.json"} {
		if _, _, ok := ParseTagPath(bad); ok {
			t.Errorf("ParseTagPath(%q) accepted", bad)
		}
	}
}

func TestParseTagRecordValidation(t *testing.T) {
	rec := TagRecord{Name: "ranker", Tag: "canary", Version: 2, Manifest: "aa"}
	data, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTagRecord(data)
	if err != nil || got != rec {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	for _, bad := range []string{
		`{`,
		`{"name":"x","tag":"canary"}`,            // version 0
		`{"name":"x","tag":"beta","version":1}`,  // outside namespace
		`{"name":"","tag":"canary","version":1}`, // no name
		`{"name":"x","tag":"canary","version":-2}`,
	} {
		if _, err := ParseTagRecord([]byte(bad)); err == nil {
			t.Errorf("ParseTagRecord(%q) accepted", bad)
		}
	}
}

func TestPublishDedupAndConflict(t *testing.T) {
	net := simnet.New(simnet.DefaultLatency(), 1)
	reg := NewRegistry(net, "registry", simnet.Placement{}, "tracker")
	NewTracker(net, "tracker", simnet.Placement{})

	p1 := SyntheticPackage("model", 1, 16<<20, DefaultChunkSize, 7)
	if _, err := reg.Publish(p1); err != nil {
		t.Fatal(err)
	}
	if st := reg.LastPublish(); st.NewChunks != 16 || st.DedupChunks != 0 {
		t.Errorf("v1 stats %+v", st)
	}
	// A quarter of the chunks change; the rest dedup against v1.
	p2 := NextVersion(p1, 2, 0.25, 7)
	if _, err := reg.Publish(p2); err != nil {
		t.Fatal(err)
	}
	if st := reg.LastPublish(); st.NewChunks != 4 || st.DedupChunks != 12 {
		t.Errorf("v2 stats %+v (want 4 new, 12 dedup)", st)
	}
	// Idempotent republish of identical content.
	if _, err := reg.Publish(p2); err != nil {
		t.Errorf("idempotent republish failed: %v", err)
	}
	// Same version, different content: refused.
	conflict := SyntheticPackage("model", 2, 16<<20, DefaultChunkSize, 99)
	if _, err := reg.Publish(conflict); err == nil {
		t.Error("conflicting republish accepted")
	}
	// latest follows publish.
	if v, ok := reg.CurrentTag("model", "latest"); !ok || v != 2 {
		t.Errorf("latest = %d, %v", v, ok)
	}
}

func TestPromotionLifecycle(t *testing.T) {
	net := simnet.New(simnet.DefaultLatency(), 1)
	reg := NewRegistry(net, "registry", simnet.Placement{}, "tracker")
	NewTracker(net, "tracker", simnet.Placement{})
	p := SyntheticPackage("model", 1, 4<<20, DefaultChunkSize, 7)
	if _, err := reg.Publish(p); err != nil {
		t.Fatal(err)
	}

	// Unpublished version: refused.
	if _, err := reg.Promote("model", "canary", 9); err == nil {
		t.Error("promoted an unpublished version")
	}
	// Unknown tag: refused.
	if _, err := reg.Promote("model", "beta", 1); err == nil {
		t.Error("promoted to a tag outside the namespace")
	}
	// prod before canary: refused (staged rollout).
	if _, err := reg.Promote("model", "prod", 1); err == nil {
		t.Error("prod promotion skipped canary")
	}
	rec, err := reg.Promote("model", "canary", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.ApplyTag(rec); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.CurrentTag("model", "canary"); !ok || v != 1 {
		t.Fatalf("canary = %d, %v", v, ok)
	}
	// Now prod is allowed.
	rec, err = reg.Promote("model", "prod", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.ApplyTag(rec); err != nil {
		t.Fatal(err)
	}
	if m, ok := reg.Resolve("model", "prod"); !ok || m.Version != 1 {
		t.Fatalf("prod resolves to %+v, %v", m, ok)
	}
}

func TestSingleAgentDownload(t *testing.T) {
	r := newSwarm(t, 1, 1, 1)
	meta := r.publish(t, "model", 1, 8<<20) // 8 MB
	var took time.Duration
	r.agents[0].OnComplete(func(_ blob.Manifest, d time.Duration, _ TransferStats) { took = d })
	r.agents[0].OnAnnounce(meta)
	r.net.RunFor(5 * time.Minute)
	if !r.agents[0].Complete("model", 1) {
		t.Fatal("download never completed")
	}
	if took <= 0 || took > time.Minute {
		t.Errorf("took = %v", took)
	}
	if r.agents[0].ChunksFromOrigin != 8 {
		t.Errorf("ChunksFromOrigin = %d, want 8", r.agents[0].ChunksFromOrigin)
	}
}

func TestDeprecatedShims(t *testing.T) {
	r := newSwarm(t, 1, 1, 1)
	meta, err := r.registry.Upload("model", 1, 4<<20, DefaultChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	r.agents[0].OnMetadata(encodeMeta(t, meta))
	r.net.RunFor(5 * time.Minute)
	if !r.agents[0].Complete("model", 1) {
		t.Fatal("shim path never completed")
	}
	// Undecodable metadata is ignored, as before.
	r.agents[0].OnMetadata([]byte("{"))
}

func TestSwarmAllComplete(t *testing.T) {
	r := newSwarm(t, 30, 3, 2)
	meta := r.publish(t, "model", 1, 16<<20)
	completed := 0
	for _, a := range r.agents {
		a.OnComplete(func(blob.Manifest, time.Duration, TransferStats) { completed++ })
		a.OnAnnounce(meta)
	}
	r.net.RunFor(10 * time.Minute)
	if completed != 30 {
		t.Fatalf("completed = %d of 30", completed)
	}
	// P2P must dominate: the registry served far fewer chunks than the
	// total demanded (30 agents x 16 chunks = 480).
	if r.registry.ChunksServed > 200 {
		t.Errorf("registry served %d chunks; P2P not offloading", r.registry.ChunksServed)
	}
	var fromPeers uint64
	for _, a := range r.agents {
		fromPeers += a.ChunksFromPeers
	}
	if fromPeers == 0 {
		t.Error("no peer-to-peer chunk exchange happened")
	}
}

func TestLocalityPreference(t *testing.T) {
	r := newSwarm(t, 40, 4, 3)
	meta := r.publish(t, "model", 1, 16<<20)
	for _, a := range r.agents {
		a.OnAnnounce(meta)
	}
	r.net.RunFor(10 * time.Minute)
	var sameCluster, total uint64
	for _, a := range r.agents {
		sameCluster += a.ChunksSameCluster
		total += a.ChunksSameCluster + a.ChunksSameRegion + a.ChunksCrossRegion
	}
	if total == 0 {
		t.Fatal("no chunks transferred")
	}
	// Same-cluster exchange must dominate (registry fetches count as
	// cross-region for eu agents, so allow some).
	if float64(sameCluster)/float64(total) < 0.5 {
		t.Errorf("same-cluster fraction = %.2f, want > 0.5 (locality-aware selection)",
			float64(sameCluster)/float64(total))
	}
}

func TestVersionConsistency(t *testing.T) {
	// 100 Mbit/s links: an 8 MB package takes > 670 ms per agent even
	// downlink-bound, so at 500 ms nobody has finished v1 yet.
	r := newSwarmBps(t, 10, 2, 4, 1.25e7)
	p1 := SyntheticPackage("model", 1, 8<<20, DefaultChunkSize, 42)
	m1, err := r.registry.Publish(p1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.agents {
		a.OnAnnounce(MetadataFor(m1, "registry", "tracker"))
	}
	// Let the swarm get partway, then publish v2: agents must abandon v1
	// and converge on v2 only.
	r.net.RunFor(500 * time.Millisecond)
	m2, err := r.registry.Publish(NextVersion(p1, 2, 0.5, 42))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.agents {
		a.OnAnnounce(MetadataFor(m2, "registry", "tracker"))
	}
	r.net.RunFor(10 * time.Minute)
	for i, a := range r.agents {
		if !a.Complete("model", 2) {
			t.Fatalf("agent %d did not converge on v2", i)
		}
		if a.Complete("model", 1) {
			t.Fatalf("agent %d reports completing the abandoned v1", i)
		}
	}
}

func TestCrossVersionDedup(t *testing.T) {
	r := newSwarm(t, 8, 2, 9)
	p1 := SyntheticPackage("model", 1, 16<<20, DefaultChunkSize, 42)
	m1, err := r.registry.Publish(p1)
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[int]TransferStats)
	for i, a := range r.agents {
		i := i
		a.OnComplete(func(_ blob.Manifest, _ time.Duration, st TransferStats) { last[i] = st })
		a.OnAnnounce(MetadataFor(m1, "registry", "tracker"))
	}
	r.net.RunFor(10 * time.Minute)
	for i, a := range r.agents {
		if !a.Complete("model", 1) {
			t.Fatalf("agent %d missing v1", i)
		}
	}

	// v2 rewrites a quarter of the chunks. Every agent already holds the
	// other 12 on disk: only the 4 changed digests cross the wire.
	m2, err := r.registry.Publish(NextVersion(p1, 2, 0.25, 42))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.agents {
		a.OnAnnounce(MetadataFor(m2, "registry", "tracker"))
	}
	r.net.RunFor(10 * time.Minute)
	for i, a := range r.agents {
		if !a.Complete("model", 2) {
			t.Fatalf("agent %d missing v2", i)
		}
		st := last[i]
		if st.ChunksFetched != 4 || st.ChunksDeduped != 12 {
			t.Errorf("agent %d: fetched %d, deduped %d (want 4 / 12)", i, st.ChunksFetched, st.ChunksDeduped)
		}
	}
}

func TestStaleMetadataIgnored(t *testing.T) {
	r := newSwarm(t, 1, 1, 5)
	metaV1 := r.publish(t, "model", 1, 4<<20)
	metaV2 := r.publish(t, "model", 2, 4<<20)
	a := r.agents[0]
	a.OnAnnounce(metaV2)
	r.net.RunFor(5 * time.Minute)
	if !a.Complete("model", 2) {
		t.Fatal("v2 not downloaded")
	}
	// An old metadata version arriving late must not restart anything.
	a.OnAnnounce(metaV1)
	r.net.RunFor(time.Minute)
	if !a.Complete("model", 2) {
		t.Fatal("stale metadata clobbered the newer version")
	}
}

func TestPeerFailureMidSwarm(t *testing.T) {
	r := newSwarm(t, 12, 2, 6)
	meta := r.publish(t, "model", 1, 8<<20)
	for _, a := range r.agents {
		a.OnAnnounce(meta)
	}
	r.net.RunFor(3 * time.Second)
	// Kill a quarter of the agents mid-download.
	for i := 0; i < 3; i++ {
		r.net.Fail(simnet.NodeID(fmt.Sprintf("srv-%d", i)))
	}
	r.net.RunFor(15 * time.Minute)
	for i := 3; i < 12; i++ {
		if !r.agents[i].Complete("model", 1) {
			t.Fatalf("surviving agent %d never completed", i)
		}
	}
}

func TestFourMinuteClaim(t *testing.T) {
	// §3.5: "PackageVessel consistently and reliably delivers the large
	// configs to the live servers in less than four minutes" — hundreds of
	// MBs to a fleet. Scaled-down check: 64 MB to 60 servers over 1 Gbit/s
	// links must finish well under four minutes.
	if testing.Short() {
		t.Skip("swarm simulation")
	}
	r := newSwarm(t, 60, 4, 7)
	meta := r.publish(t, "model", 1, 64<<20)
	var worst time.Duration
	completed := 0
	for _, a := range r.agents {
		a.OnComplete(func(_ blob.Manifest, d time.Duration, _ TransferStats) {
			completed++
			if d > worst {
				worst = d
			}
		})
		a.OnAnnounce(meta)
	}
	r.net.RunFor(10 * time.Minute)
	if completed != 60 {
		t.Fatalf("completed = %d of 60", completed)
	}
	if worst > 4*time.Minute {
		t.Errorf("slowest server took %v, want < 4m", worst)
	}
}

func TestCentralOnlySlowerThanP2P(t *testing.T) {
	run := func(p2p bool) time.Duration {
		r := newSwarm(t, 24, 2, 8)
		p := SyntheticPackage("model", 1, 32<<20, DefaultChunkSize, 42)
		m, err := r.registry.Publish(p)
		if err != nil {
			t.Fatal(err)
		}
		var worst time.Duration
		completed := 0
		for _, a := range r.agents {
			a.OnComplete(func(_ blob.Manifest, d time.Duration, _ TransferStats) {
				completed++
				if d > worst {
					worst = d
				}
			})
			if p2p {
				a.OnAnnounce(MetadataFor(m, "registry", "tracker"))
			} else {
				a.FetchDirect(m, "registry")
			}
		}
		r.net.RunFor(2 * time.Hour)
		if completed != 24 {
			t.Fatalf("completed = %d of 24 (p2p=%v)", completed, p2p)
		}
		return worst
	}
	p2p := run(true)
	central := run(false)
	if central <= p2p {
		t.Errorf("central (%v) should be slower than p2p (%v): registry uplink is the bottleneck",
			central, p2p)
	}
}
