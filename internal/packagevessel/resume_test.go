package packagevessel

import (
	"fmt"
	"testing"
	"time"

	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
)

// TestResumeAfterCrash is the journal's reason to exist: an agent killed
// mid-download restarts, re-verifies what the journal says is on disk,
// and fetches ONLY the digests that are still missing — no re-download of
// verified chunks.
func TestResumeAfterCrash(t *testing.T) {
	const (
		agents    = 12
		sizeBytes = 64 << 20 // 64 chunks
		chunks    = 64
		slowBps   = 1.25e7 // 100 Mbit/s: the transfer takes several seconds
	)
	net := simnet.New(simnet.DefaultLatency(), 11)
	registry := NewRegistry(net, "registry", simnet.Placement{Region: "us", Cluster: "store"}, "tracker")
	net.SetBandwidth("registry", slowBps, slowBps)
	NewTracker(net, "tracker", simnet.Placement{Region: "us", Cluster: "store"})

	var fleet []*Agent
	for i := 0; i < agents; i++ {
		id := simnet.NodeID(fmt.Sprintf("srv-%d", i))
		a := NewAgent(net, id, simnet.Placement{Region: "us", Cluster: "c0"}, Options{})
		net.SetBandwidth(id, slowBps, slowBps)
		fleet = append(fleet, a)
	}
	victim := fleet[0]

	m, err := registry.Publish(SyntheticPackage("model", 1, sizeBytes, DefaultChunkSize, 42))
	if err != nil {
		t.Fatal(err)
	}
	var final TransferStats
	victim.OnComplete(func(_ blob.Manifest, _ time.Duration, st TransferStats) { final = st })
	for _, a := range fleet {
		a.OnAnnounce(MetadataFor(m, "registry", "tracker"))
	}

	// Kill the victim mid-download, restart it later. The crash wipes all
	// in-memory swarm state; the store (its disk) survives.
	plan := simnet.NewFaultPlan(
		simnet.WithCrash(2*time.Second, victim.id),
		simnet.WithRestart(20*time.Second, victim.id),
	)
	plan.Apply(net)
	net.RunFor(10 * time.Minute)

	if plan.Fired() != 2 {
		t.Fatalf("fault plan fired %d of 2 events", plan.Fired())
	}
	if !victim.Complete("model", 1) {
		t.Fatal("victim never completed after restart")
	}
	if !final.Resumed {
		t.Fatal("final transfer does not report resuming from the journal")
	}
	// The crash must land mid-transfer for the test to mean anything.
	if final.ResumeVerified <= 0 || final.ResumeVerified >= chunks {
		t.Fatalf("ResumeVerified = %d, want mid-transfer (0 < n < %d)", final.ResumeVerified, chunks)
	}
	// Only the missing digests crossed the wire after restart.
	if final.ChunksFetched != chunks-final.ResumeVerified {
		t.Errorf("post-restart fetched %d, want %d (= %d missing)",
			final.ChunksFetched, chunks-final.ResumeVerified, chunks-final.ResumeVerified)
	}
	// Across both lives the victim fetched each chunk exactly once.
	if victim.ChunksFetched != chunks {
		t.Errorf("lifetime ChunksFetched = %d, want %d (verified chunks re-downloaded?)",
			victim.ChunksFetched, chunks)
	}
	if victim.ResumeVerified != uint64(final.ResumeVerified) {
		t.Errorf("agent ResumeVerified counter = %d, stats say %d", victim.ResumeVerified, final.ResumeVerified)
	}

	// The rest of the fleet was undisturbed.
	for i, a := range fleet[1:] {
		if !a.Complete("model", 1) {
			t.Fatalf("bystander %d never completed", i+1)
		}
	}
}

// TestResumeAfterDiskLoss: chunks lost from disk while the node was down
// fail the restart verification pass and are fetched again — the journal
// trusts the disk only as far as re-verification confirms it.
func TestResumeAfterDiskLoss(t *testing.T) {
	const slowBps = 1.25e7
	net := simnet.New(simnet.DefaultLatency(), 12)
	registry := NewRegistry(net, "registry", simnet.Placement{Region: "us", Cluster: "store"}, "tracker")
	net.SetBandwidth("registry", slowBps, slowBps)
	NewTracker(net, "tracker", simnet.Placement{Region: "us", Cluster: "store"})
	a := NewAgent(net, "srv-0", simnet.Placement{Region: "us", Cluster: "c0"}, Options{})
	net.SetBandwidth("srv-0", slowBps, slowBps)

	m, err := registry.Publish(SyntheticPackage("model", 1, 64<<20, DefaultChunkSize, 42))
	if err != nil {
		t.Fatal(err)
	}
	a.OnAnnounce(MetadataFor(m, "registry", "tracker"))

	plan := simnet.NewFaultPlan(
		simnet.WithCrash(2*time.Second, "srv-0"),
		// While down, the disk loses everything fetched so far.
		simnet.WithCall(3*time.Second, "wipe-disk", func() {
			for _, r := range m.Chunks {
				a.Store().Drop(r.Digest)
			}
		}),
		simnet.WithRestart(5*time.Second, "srv-0"),
	)
	plan.Apply(net)
	net.RunFor(10 * time.Minute)

	if plan.Fired() != 3 {
		t.Fatalf("fault plan fired %d of 3 events", plan.Fired())
	}
	if !a.Complete("model", 1) {
		t.Fatal("agent never completed after disk loss")
	}
	// Everything fetched before the crash was lost, so those chunks went
	// over the wire twice.
	if a.ChunksFetched <= 64 {
		t.Errorf("lifetime ChunksFetched = %d, want > 64 (lost chunks must be re-fetched)", a.ChunksFetched)
	}
}
