package packagevessel

import (
	"time"

	"configerator/internal/obs"
	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
)

// Swarm coordination is keyed by digest, not by (package, version,
// index): the tracker counts holders per digest, so a chunk shared
// between versions has every v1 holder counted when a v2 swarm asks for
// it — rarest-first scheduling concentrates on the genuinely new bytes
// and cross-version seeding falls out for free.
//
// Fleet-scale accommodations:
//
//   - Holder sets are capped reservoir samples (holderSample entries) on
//     top of an exact count; rarity uses the count, peer selection draws
//     from the sample. A digest with thousands of holders does not cost
//     thousands of map entries per digest.
//   - Grants are batched: one msgWant returns up to Max grants, so an
//     agent coordinates a whole fetch window per round trip instead of
//     one tracker round trip per chunk (the "old swarm" behavior the
//     vessel experiment compares against).
//   - Each holder has a per-tick grant budget (refilled on a timer), so
//     ten thousand cold agents cannot all be pointed at the single seed
//     in the first wave — the flash crowd is spread over the exponential
//     capacity growth of the swarm itself.

const (
	// holderSample caps remembered holders per digest.
	holderSample = 64
	// trackerTick is the grant-budget refill interval.
	trackerTick = 500 * time.Millisecond
	// defaultHolderBudget is the default grants per holder per tick,
	// sized to roughly a 1 Gbit/s uplink's chunk capacity per tick at the
	// default 1 MiB chunk size (~59 chunks/tick, kept under it so a
	// holder's uplink never queues a full tick deep).
	defaultHolderBudget = 32
	// defaultFarBudget caps cross-region grants per requesting region per
	// tick: enough to bootstrap a region that holds nothing, small enough
	// that a region never bulk-transfers over the spine what its own
	// swarm will hold moments later.
	defaultFarBudget = 32
)

// holderRef is a sampled holder with its placement cached at announce
// time (placement is immutable in the simulation), so peer selection
// never re-resolves node ids on the hot path.
type holderRef struct {
	id simnet.NodeID
	pl simnet.Placement
}

// digestState tracks one digest's holders.
type digestState struct {
	count  int         // exact holder count (rarity)
	sample []holderRef // reservoir sample of holders (peer selection)
}

// Tracker coordinates swarms by digest rarity.
type Tracker struct {
	id  simnet.NodeID
	net *simnet.Network
	obs *obs.Registry

	digests map[blob.Digest]*digestState
	// busy counts grants per holder in the current tick; refilled (cleared)
	// every trackerTick so one seed is never the whole first wave's target.
	busy   map[simnet.NodeID]int
	budget int
	// busyFar counts cross-region grants per requesting region this tick.
	busyFar   map[string]int
	farBudget int

	// Scratch buffers reused across assign calls (the tracker handles one
	// message at a time, so per-call allocation here is pure GC churn at
	// fleet scale).
	scratchAvoid  map[simnet.NodeID]bool
	scratchStates []*digestState

	// Assignments counts grants handed out.
	Assignments uint64
	// Wants and EmptyWants count grant requests and the subset answered
	// with zero grants (the requester backs off and retries).
	Wants      uint64
	EmptyWants uint64
}

// NewTracker creates the coordinator node.
func NewTracker(net *simnet.Network, id simnet.NodeID, p simnet.Placement) *Tracker {
	t := &Tracker{
		id: id, net: net,
		digests:      make(map[blob.Digest]*digestState),
		busy:         make(map[simnet.NodeID]int),
		budget:       defaultHolderBudget,
		busyFar:      make(map[string]int),
		farBudget:    defaultFarBudget,
		scratchAvoid: make(map[simnet.NodeID]bool),
	}
	net.AddNode(id, p, t)
	net.SetTimer(id, trackerTick, msgTrackerTick{})
	return t
}

// SetObs attaches the metrics registry (nil-safe).
func (t *Tracker) SetObs(reg *obs.Registry) { t.obs = reg }

// SetHolderBudget tunes grants per holder per refill tick. Roughly
// uplink_bytes_per_tick / chunk_size; too high just queues at the
// holder's uplink, too low idles it.
func (t *Tracker) SetHolderBudget(n int) {
	if n > 0 {
		t.budget = n
	}
}

// HolderBudgetFor sizes the per-holder grant budget for a fleet of
// uplinkBps-capable holders swarming chunkSize-byte chunks: the number of
// chunks one uplink can push per tracker tick. Oversubscribing the budget
// queues chunks at holder uplinks until fetches hit their timeout and the
// grants are wasted; matching it keeps uplinks saturated but the queues
// shallow.
func HolderBudgetFor(uplinkBps float64, chunkSize int) int {
	perTick := uplinkBps * trackerTick.Seconds() / float64(chunkSize)
	if perTick < 1 {
		return 1
	}
	return int(perTick)
}

// ID is the tracker's node id.
func (t *Tracker) ID() simnet.NodeID { return t.id }

// Holders reports the known holder count for a digest.
func (t *Tracker) Holders(d blob.Digest) int {
	if s, ok := t.digests[d]; ok {
		return s.count
	}
	return 0
}

// SetFarBudget tunes cross-region grants per requesting region per tick.
func (t *Tracker) SetFarBudget(n int) {
	if n > 0 {
		t.farBudget = n
	}
}

// OnRestart implements simnet.Restarter: re-arm the budget tick.
func (t *Tracker) OnRestart(ctx *simnet.Context) {
	t.busy = make(map[simnet.NodeID]int)
	t.busyFar = make(map[string]int)
	ctx.SetTimer(trackerTick, msgTrackerTick{})
}

// HandleMessage implements simnet.Handler.
func (t *Tracker) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case msgTrackerTick:
		// Refill: clear per-holder and per-region grant counts and re-arm.
		clear(t.busy)
		clear(t.busyFar)
		ctx.SetTimer(trackerTick, msgTrackerTick{})
	case msgAnnounce:
		t.addHolder(from, m.Digests)
	case msgWant:
		t.addHolder(from, m.Have)
		if len(m.Need) > 0 {
			t.assign(ctx, from, m)
		}
	}
}

func (t *Tracker) addHolder(holder simnet.NodeID, digests []blob.Digest) {
	if len(digests) == 0 {
		return
	}
	ref := holderRef{id: holder, pl: t.net.Placement(holder)}
	for _, d := range digests {
		s := t.digests[d]
		if s == nil {
			s = &digestState{}
			t.digests[d] = s
		}
		s.count++
		if len(s.sample) < holderSample {
			s.sample = append(s.sample, ref)
		} else if i := t.net.RNG().Intn(s.count); i < holderSample {
			// Reservoir: replace uniformly so the sample stays
			// representative of the full holder population.
			s.sample[i] = ref
		}
	}
}

// assign grants up to m.Max digest fetches: rarest-first over the
// requested digests (with a 2x band and random tie-breaking so the swarm
// decorrelates), closest eligible holder per digest, holder budgets
// respected.
func (t *Tracker) assign(ctx *simnet.Context, agent simnet.NodeID, m msgWant) {
	avoid := t.scratchAvoid
	clear(avoid)
	avoid[agent] = true
	for _, p := range m.Avoid {
		avoid[p] = true
	}
	// One pass over the request: resolve each digest once, tracking the
	// rarity floor as we go.
	states := t.scratchStates[:0]
	minRarity := int(^uint(0) >> 1)
	for _, d := range m.Need {
		s := t.digests[d]
		states = append(states, s)
		if s != nil && s.count > 0 && s.count < minRarity {
			minRarity = s.count
		}
	}
	t.scratchStates = states
	// Candidates sit within a 2x band of the rarest; visiting them in
	// random order decorrelates concurrent swarm members. We permute
	// in place over the request's digest list (shared band membership
	// makes a full sort unnecessary).
	rng := t.net.RNG()
	need := m.Need
	for i := len(need) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		need[i], need[j] = need[j], need[i]
		states[i], states[j] = states[j], states[i]
	}
	max := m.Max
	if max <= 0 {
		max = 1
	}
	ap := t.net.Placement(agent)
	var grants []grant
	// Two passes: rare digests (within a 2x band of the rarest) first, so
	// new bytes replicate before they bottleneck, then everything else.
	// Rarity is a priority, not a filter — an exclusive band would pin the
	// whole swarm's grant rate to the rare chunks' few (budget-capped)
	// holders while well-replicated chunks sit ungranted beside them.
	for _, rareOnly := range [2]bool{true, false} {
		for i, d := range need {
			if len(grants) >= max {
				break
			}
			s := states[i]
			if s == nil || s.count == 0 {
				continue
			}
			if rareOnly != (s.count <= 2*minRarity) {
				continue
			}
			peer := t.pickHolder(s, ap, avoid)
			if peer == "" {
				continue
			}
			t.busy[peer]++
			t.Assignments++
			grants = append(grants, grant{Digest: d, Peer: peer})
		}
	}
	t.Wants++
	if len(grants) == 0 {
		t.EmptyWants++
	}
	t.obs.Add("vessel.tracker.grants", int64(len(grants)))
	ctx.Send(agent, msgAssign{Grants: grants, Retry: len(grants) == 0})
}

// pickHolder prefers same-cluster, then same-region, then anything — the
// locality awareness of §3.5 — among sampled holders that are up and not
// avoided. Locality is strict: a grant spills to a farther class only
// when a nearer class has no live holder at all. A budget-saturated
// nearby holder means "retry next tick", not "fetch cross-cluster" — the
// cluster's own capacity doubles as agents complete, so waiting a tick is
// cheaper than crossing the network spine.
func (t *Tracker) pickHolder(s *digestState, ap simnet.Placement, avoid map[simnet.NodeID]bool) simnet.NodeID {
	// Reservoir-pick one free holder per locality class in a single pass
	// over the sample — uniform among the free holders of each class
	// without materializing the class lists.
	var cluster, region, far simnet.NodeID // uniform pick among free holders
	var nCluster, nRegion, nFar int
	var clusterAny, regionAny, farAny bool // any live holder, even saturated
	rng := t.net.RNG()
	for _, h := range s.sample {
		if avoid[h.id] || t.net.IsDown(h.id) {
			continue
		}
		free := t.busy[h.id] < t.budget
		switch {
		case h.pl.Region == ap.Region && h.pl.Cluster == ap.Cluster:
			clusterAny = true
			if free {
				nCluster++
				if rng.Intn(nCluster) == 0 {
					cluster = h.id
				}
			}
		case h.pl.Region == ap.Region:
			regionAny = true
			if free {
				nRegion++
				if rng.Intn(nRegion) == 0 {
					region = h.id
				}
			}
		default:
			farAny = true
			if free {
				nFar++
				if rng.Intn(nFar) == 0 {
					far = h.id
				}
			}
		}
	}
	switch {
	case clusterAny:
		return cluster
	case regionAny:
		return region
	case farAny:
		// Cross-region bootstrap is rationed per requesting region: once
		// the region holds copies, its agents fetch locally instead.
		if t.busyFar[ap.Region] >= t.farBudget {
			return ""
		}
		if far != "" {
			t.busyFar[ap.Region]++
			return far
		}
	}
	return ""
}
