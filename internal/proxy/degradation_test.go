package proxy

import (
	"testing"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// degRig is a rig that also keeps the observer handles and an obs registry,
// for the graceful-degradation tests.
type degRig struct {
	*rig
	reg  *obs.Registry
	obs1 *zeus.Observer
	obs2 *zeus.Observer
}

func newDegRig(t *testing.T, seed uint64) *degRig {
	t.Helper()
	reg := obs.New()
	net := simnet.New(simnet.DefaultLatency(), seed)
	net.SetObs(reg)
	placements := []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
	}
	ens := zeus.StartEnsemble(net, 3, placements)
	ens.SetObs(reg)
	o1 := ens.AddObserver("obs-1", simnet.Placement{Region: "us", Cluster: "web"})
	o2 := ens.AddObserver("obs-2", simnet.Placement{Region: "us", Cluster: "web"})
	cl := zeus.NewClient("tailer", ens.Members)
	net.AddNode("tailer", simnet.Placement{Region: "us", Cluster: "ctrl"}, cl)
	net.RunFor(10 * time.Second)
	if ens.Leader() == "" {
		t.Fatal("no leader")
	}
	px := New(net, "proxy-1", simnet.Placement{Region: "us", Cluster: "web"},
		[]simnet.NodeID{"obs-1", "obs-2"}, nil)
	px.Obs = reg
	return &degRig{
		rig:  &rig{net: net, ens: ens, client: cl, proxy: px},
		reg:  reg,
		obs1: o1,
		obs2: o2,
	}
}

// TestPartitionHealObserverFailover: a link partition (not a crash) between
// the proxy and its observer triggers failover via ping misses; after the
// link heals and the other observer dies, the proxy fails back and keeps
// receiving pushes throughout.
func TestPartitionHealObserverFailover(t *testing.T) {
	r := newDegRig(t, 21)
	r.write(t, "/configs/app", `v1`)
	var got []string
	r.proxy.Subscribe("/configs/app", func(e Entry) { got = append(got, string(e.Data)) })
	r.net.RunFor(2 * time.Second)

	first := r.proxy.observer()
	r.net.Partition("proxy-1", first)
	r.net.RunFor(15 * time.Second)
	second := r.proxy.observer()
	if second == first {
		t.Fatal("proxy did not fail over across the partition")
	}
	r.write(t, "/configs/app", `v2`)
	if e, _ := r.proxy.Get("/configs/app"); string(e.Data) != "v2" {
		t.Fatalf("after failover, cache = %s", e.Data)
	}

	// Heal the first link, then cut down the second observer entirely: the
	// proxy must fail back to the healed one.
	r.net.Heal("proxy-1", first)
	r.net.Fail(second)
	r.net.RunFor(15 * time.Second)
	if cur := r.proxy.observer(); cur != first {
		t.Fatalf("proxy on %s after heal+fail, want %s", cur, first)
	}
	r.write(t, "/configs/app", `v3`)
	if e, _ := r.proxy.Get("/configs/app"); string(e.Data) != "v3" {
		t.Fatalf("after fail-back, cache = %s", e.Data)
	}
	if len(got) == 0 || got[len(got)-1] != "v3" {
		t.Fatalf("subscriber missed updates: %v", got)
	}
	if c := r.reg.Counters().Get("proxy.failover"); c < 2 {
		t.Errorf("proxy.failover = %d, want >= 2", c)
	}
}

// TestStaleServeFullOutage is the stale-serve regression test: with the
// whole distribution plane gone, reads still succeed — served from the
// in-memory cache (and, after a proxy crash, from disk) with explicit
// staleness metadata — and the same reads are refused when stale-serve is
// disabled.
func TestStaleServeFullOutage(t *testing.T) {
	r := newDegRig(t, 22)
	r.write(t, "/configs/app", `v1`)
	r.proxy.Want("/configs/app")
	r.net.RunFor(2 * time.Second)

	// Kill the entire plane.
	r.net.Fail("obs-1")
	r.net.Fail("obs-2")
	r.net.RunFor(20 * time.Second)
	if !r.proxy.PlaneDown() {
		t.Fatal("proxy did not mark the plane down")
	}
	if c := r.reg.Counters().Get("proxy.plane.down"); c == 0 {
		t.Error("proxy.plane.down counter not incremented")
	}

	// Reads keep working, marked as degraded (cached, not fresh).
	res := r.proxy.Read("/configs/app")
	if !res.OK || string(res.Data) != "v1" {
		t.Fatalf("outage read = %+v", res)
	}
	if res.Source != SourceCached {
		t.Errorf("outage read source = %q, want %q", res.Source, SourceCached)
	}
	if res.Age <= 0 {
		t.Errorf("outage read age = %v, want > 0", res.Age)
	}

	// After the proxy process also dies, reads degrade further to disk.
	r.proxy.Crash()
	res = r.proxy.Read("/configs/app")
	if !res.OK || string(res.Data) != "v1" {
		t.Fatalf("disk read = %+v", res)
	}
	if res.Source != SourceStale {
		t.Errorf("disk read source = %q, want %q", res.Source, SourceStale)
	}

	// The same reads are refused when stale-serve is off.
	r.proxy.StaleServe = false
	if res := r.proxy.Read("/configs/app"); res.OK {
		t.Fatalf("stale-serve off still served: %+v", res)
	}
	if c := r.reg.Counters().Get("proxy.read.refused"); c == 0 {
		t.Error("proxy.read.refused counter not incremented")
	}
}

// TestPlaneHealResubscribes: after a full plane outage ends, the proxy
// re-establishes its watches (delta or full-snapshot fallback) and catches
// up on versions committed during the outage.
func TestPlaneHealResubscribes(t *testing.T) {
	r := newDegRig(t, 23)
	r.write(t, "/configs/app", `v1`)
	var got []string
	r.proxy.Subscribe("/configs/app", func(e Entry) { got = append(got, string(e.Data)) })
	r.net.RunFor(2 * time.Second)

	r.net.Fail("obs-1")
	r.net.Fail("obs-2")
	r.net.RunFor(20 * time.Second)
	if !r.proxy.PlaneDown() {
		t.Fatal("plane not down")
	}
	r.write(t, "/configs/app", `v2`) // commits while the plane is dark

	r.net.Recover("obs-1")
	r.net.Recover("obs-2")
	r.net.RunFor(30 * time.Second) // observers re-register, proxy heals
	if r.proxy.PlaneDown() {
		t.Fatal("plane still marked down after recovery")
	}
	if c := r.reg.Counters().Get("proxy.plane.heal"); c == 0 {
		t.Error("proxy.plane.heal counter not incremented")
	}
	if e, _ := r.proxy.Get("/configs/app"); string(e.Data) != "v2" {
		t.Fatalf("after heal, cache = %s, want v2", e.Data)
	}
	if len(got) == 0 || got[len(got)-1] != "v2" {
		t.Fatalf("subscriber did not catch up: %v", got)
	}
}

// TestWatchRegistrationNoLeak: repeated proxy crash-restart cycles must not
// accumulate watch registrations on the observer, duplicate in-flight
// fetch bookkeeping in the proxy, or dead subscriptions.
func TestWatchRegistrationNoLeak(t *testing.T) {
	r := newDegRig(t, 24)
	r.write(t, "/configs/app", `v1`)
	alive := true
	r.proxy.SubscribeWhile("/configs/app", func() bool { return alive }, func(Entry) {})
	r.net.RunFor(2 * time.Second)

	for cycle := 0; cycle < 5; cycle++ {
		r.proxy.Crash()
		r.net.RunFor(3 * time.Second)
		r.proxy.Restart()
		r.net.RunFor(5 * time.Second)
	}
	// One subscription, and at most one watch registration per observer —
	// not one per crash cycle.
	if n := r.proxy.SubCount("/configs/app"); n != 1 {
		t.Errorf("SubCount = %d after 5 restarts, want 1", n)
	}
	if n := r.obs1.WatchCount("/configs/app") + r.obs2.WatchCount("/configs/app"); n > 2 {
		t.Errorf("observer watch registrations = %d after 5 restarts, want <= 2", n)
	}
	if n := r.proxy.InflightCount(); n != 0 {
		t.Errorf("inflight fetches = %d after settling, want 0", n)
	}

	// Dead subscriptions are pruned, not leaked.
	alive = false
	r.write(t, "/configs/app", `v2`)
	if n := r.proxy.SubCount("/configs/app"); n != 0 {
		t.Errorf("SubCount = %d after subscriber died, want 0", n)
	}
}
