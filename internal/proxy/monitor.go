// Convergence heartbeats: the proxy's contribution to the fleet-health
// monitoring plane. When enabled, the proxy periodically reports the
// (version, zxid, content-hash) it serves for every cached path, plus its
// staleness source (plane down or not), to a monitor node on the sim
// clock. The monitor folds these against the Zeus commit watermarks into
// fleet-convergence curves and straggler lists.
//
// The heartbeat types live here — not in internal/monitor — so the
// dependency points one way: monitor imports proxy, never the reverse.
//
// Heartbeats run entirely on the simulation loop (a timer tick reading
// the immutable snapshot), so enabling monitoring adds zero work to the
// zero-alloc read hot path.

package proxy

import (
	"time"

	"configerator/internal/simnet"
)

// PathState is one path's served state as reported in a heartbeat.
type PathState struct {
	Path    string
	Version int64
	Zxid    int64
	Hash    uint64
	// Fetched is when the proxy materialized the version it serves — the
	// exact virtual-clock instant the monitor uses for time-to-head, so
	// heartbeat cadence only delays when a measurement is recorded, never
	// distorts its value.
	Fetched time.Time
}

// MsgMonitorHeartbeat is the periodic fleet-health report a proxy sends
// to its monitor node.
type MsgMonitorHeartbeat struct {
	Proxy     simnet.NodeID
	At        time.Time
	PlaneDown bool // serving degraded (every observer considered dead)
	Paths     []PathState
}

// heartbeatEntryBytes approximates the wire size of one PathState beyond
// its path string (version+zxid+hash+timestamp).
const heartbeatEntryBytes = 32

type msgTickMonitor struct{}

// EnableMonitor starts periodic convergence heartbeats to the target
// monitor node (every <= 0 selects 1s). Driver/simulation thread only.
func (p *Proxy) EnableMonitor(target simnet.NodeID, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	armed := p.monTarget != ""
	p.monTarget = target
	p.monEvery = every
	if !armed && target != "" {
		p.net.SetTimer(p.id, every, msgTickMonitor{})
	}
}

// MonitorTarget reports the monitor node heartbeats go to ("" = off).
func (p *Proxy) MonitorTarget() simnet.NodeID { return p.monTarget }

// onTickMonitor builds and sends one heartbeat from the current read
// snapshot, then re-arms the tick.
func (p *Proxy) onTickMonitor(ctx *simnet.Context) {
	if p.monTarget == "" {
		return
	}
	ctx.SetTimer(p.monEvery, msgTickMonitor{})
	snap := p.snap.Load()
	if snap.down {
		return
	}
	hb := MsgMonitorHeartbeat{
		Proxy:     p.id,
		At:        ctx.Now(),
		PlaneDown: snap.planeDown,
		Paths:     make([]PathState, 0, len(snap.entries)),
	}
	size := 0
	for _, st := range snap.entries {
		e := st.e
		if !e.Exists {
			continue
		}
		hb.Paths = append(hb.Paths, PathState{
			Path: e.Path, Version: e.Version, Zxid: e.Zxid,
			Hash: e.Hash, Fetched: e.Fetched,
		})
		size += len(e.Path) + heartbeatEntryBytes
	}
	ctx.SendSized(p.monTarget, hb, size)
	p.Obs.Add("proxy.monitor.heartbeat", 1)
}
