package proxy

import (
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestOverrideWinsOverCacheAndClears(t *testing.T) {
	r := newRig(t, 11)
	r.write(t, "/configs/app", `committed`)
	var seen []string
	r.proxy.Subscribe("/configs/app", func(e Entry) { seen = append(seen, string(e.Data)) })
	r.net.RunFor(2 * time.Second)

	// Canary-style temporary deploy.
	r.proxy.SetOverride("/configs/app", []byte(`canary`))
	if !r.proxy.Overridden("/configs/app") {
		t.Fatal("Overridden = false")
	}
	e, ok := r.proxy.Get("/configs/app")
	if !ok || string(e.Data) != "canary" {
		t.Fatalf("Get during override = %q", e.Data)
	}
	if len(seen) == 0 || seen[len(seen)-1] != "canary" {
		t.Fatalf("subscriber did not see the override: %v", seen)
	}

	// Rollback re-feeds the committed value.
	r.proxy.ClearOverride("/configs/app")
	if r.proxy.Overridden("/configs/app") {
		t.Fatal("Overridden after clear")
	}
	e, _ = r.proxy.Get("/configs/app")
	if string(e.Data) != "committed" {
		t.Fatalf("Get after rollback = %q", e.Data)
	}
	if seen[len(seen)-1] != "committed" {
		t.Fatalf("subscriber not restored: %v", seen)
	}
	// Clearing a non-existent override is a no-op.
	r.proxy.ClearOverride("/configs/never")
}

func TestCommittedUpdateDuringOverride(t *testing.T) {
	r := newRig(t, 12)
	r.write(t, "/configs/app", `v1`)
	r.proxy.Want("/configs/app")
	r.net.RunFor(2 * time.Second)
	r.proxy.SetOverride("/configs/app", []byte(`canary`))
	// A committed change lands while the override is active.
	r.write(t, "/configs/app", `v2`)
	e, _ := r.proxy.Get("/configs/app")
	if string(e.Data) != "canary" {
		t.Fatalf("override should still win: %q", e.Data)
	}
	r.proxy.ClearOverride("/configs/app")
	e, _ = r.proxy.Get("/configs/app")
	if string(e.Data) != "v2" {
		t.Fatalf("after clear, Get = %q, want the newest committed value", e.Data)
	}
}

func TestCachedPaths(t *testing.T) {
	r := newRig(t, 13)
	r.write(t, "/configs/a", `1`)
	r.write(t, "/configs/b", `2`)
	r.proxy.Want("/configs/a")
	r.proxy.Want("/configs/b")
	r.net.RunFor(2 * time.Second)
	r.proxy.SetOverride("/configs/c", []byte(`3`))
	got := r.proxy.CachedPaths()
	sort.Strings(got)
	want := []string{"/configs/a", "/configs/b", "/configs/c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CachedPaths = %v, want %v", got, want)
	}
}

func TestAccessors(t *testing.T) {
	r := newRig(t, 14)
	if r.proxy.ID() != "proxy-1" {
		t.Errorf("ID = %s", r.proxy.ID())
	}
	if r.proxy.Disk() == nil {
		t.Error("Disk = nil")
	}
	if r.proxy.Down() {
		t.Error("fresh proxy reports down")
	}
	r.proxy.Crash()
	if !r.proxy.Down() {
		t.Error("crashed proxy reports up")
	}
	r.proxy.Restart()
	if r.proxy.Down() {
		t.Error("restarted proxy reports down")
	}
}
