package proxy

import (
	"strings"
	"testing"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// TestPushTreeLatencyMatchesLinkModel guards the ~4.5 s tree-propagation
// calibration (§6.3): with configured hop latencies, the instrumented
// leader→observer→proxy push must measure exactly those hops.
//
// The link latencies are inflated to seconds so the hops dominate; that
// breaks multi-member consensus (probe RTT exceeds the 300 ms election
// window), so the calibrated topology uses a single-member ensemble, which
// self-elects at any latency (quorum = 1). The leader sits alone in region
// "us"; the observer and proxy share a cluster in region "eu", making
// leader→observer one cross-region hop (4 s) and observer→proxy one
// in-cluster hop (500 ms) — a 4.5 s commit-to-proxy total.
func TestPushTreeLatencyMatchesLinkModel(t *testing.T) {
	lat := simnet.LatencyModel{
		SameCluster: 500 * time.Millisecond,
		SameRegion:  2 * time.Second,
		CrossRegion: 4 * time.Second,
		Jitter:      0,
	}
	net := simnet.New(lat, 1)
	reg := obs.New()
	ens := zeus.StartEnsemble(net, 1, []simnet.Placement{{Region: "us", Cluster: "zk"}})
	ens.SetObs(reg)
	euPlace := simnet.Placement{Region: "eu", Cluster: "c1"}
	ens.AddObserver("obs-eu", euPlace)
	px := New(net, "srv-eu", euPlace, []simnet.NodeID{"obs-eu"}, nil)
	px.Obs = reg
	// Writer in the leader's cluster: the 1 s write RTT stays under the
	// 1.5 s client retry timeout.
	cl := zeus.NewClient("writer", ens.Members)
	net.AddNode("writer", simnet.Placement{Region: "us", Cluster: "zk"}, cl)

	net.RunFor(20 * time.Second)
	if ens.Leader() == "" {
		t.Fatal("single-member ensemble failed to self-elect")
	}

	const path = "/configs/calib.json"
	write := func(data string) {
		t.Helper()
		done := false
		net.After(0, func() {
			ctx := simnet.MakeContext(net, "writer")
			cl.Write(&ctx, path, []byte(data), func(zeus.WriteResult) { done = true })
		})
		for i := 0; i < 100 && !done; i++ {
			net.RunFor(time.Second)
		}
		if !done {
			t.Fatal("write never committed")
		}
	}

	// Establish the watch on v1 before measuring: the v2 delivery is then a
	// pure push down the tree, with no fetch round-trip in the measurement.
	write(`{"v":1}`)
	px.Want(path)
	net.RunFor(20 * time.Second)
	if _, ok := px.Get(path); !ok {
		t.Fatal("proxy never fetched v1")
	}

	tr := reg.StartTrace("calib", net.Now())
	reg.BindPath(path, tr)
	write(`{"v":2}`)
	net.RunFor(20 * time.Second)
	tr.EndAt(net.Now())

	const tol = 50 * time.Millisecond
	assertHop := func(name string, want time.Duration) {
		t.Helper()
		h := reg.Histogram(name)
		if h.Count() != 1 {
			t.Fatalf("%s: %d observations, want 1\n%s", name, h.Count(), reg.Text())
		}
		got := h.Max()
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %s, want %s ±%s", name, got, want, tol)
		}
	}
	assertHop(obs.HistHopLeaderObserver, 4*time.Second)
	assertHop(obs.HistHopObserverProxy, 500*time.Millisecond)
	assertHop(obs.HistCommitToProxy, 4500*time.Millisecond)

	// The application read after delivery measures commit-to-read.
	if _, ok := px.Get(path); !ok {
		t.Fatal("proxy lost the config")
	}
	if h := reg.Histogram(obs.HistCommitToRead); h.Count() != 1 || h.Max() < 4500*time.Millisecond {
		t.Errorf("commit_to_read: n=%d max=%s", h.Count(), h.Max())
	}

	// The trace stitched the full hop chain.
	out := tr.Render()
	for _, want := range []string{"zeus.commit", "observer obs-eu", "proxy srv-eu"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
