// Package proxy implements the Configerator Proxy that runs on every
// production server (§3.4, bottom of Figure 3).
//
// The proxy randomly picks a Zeus observer in its own cluster, fetches the
// configs the local applications need (it is not a full replica — it only
// caches what is asked for), leaves watches so updates are pushed, and
// stores everything in an on-disk cache. Failure handling follows the
// paper (§4.1): fetches carry deadlines and retry with exponentially
// backed-off, deterministically jittered delays; a slow observer gets a
// hedged second fetch after a p99-derived delay; a failed observer is
// replaced by the healthiest alternative (scored from observed error rate
// and latency); and if every Configerator component fails, reads degrade
// to the on-disk cache with explicit staleness metadata — a config that
// was ever fetched remains available (stale but usable) no matter what.
package proxy

import (
	"sort"
	"time"

	"configerator/internal/health"
	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/vcs"
	"configerator/internal/zeus"
)

// Entry is one cached config.
type Entry struct {
	Path    string
	Exists  bool
	Data    []byte
	Version int64
	Zxid    int64
	// Fetched is when the proxy last confirmed this entry with an
	// observer (virtual time).
	Fetched time.Time
}

// DiskCache is the on-disk cache shared between the proxy process and the
// client library's failure fallback. It survives proxy crashes.
type DiskCache struct {
	entries map[string]Entry
}

// NewDiskCache returns an empty cache.
func NewDiskCache() *DiskCache {
	return &DiskCache{entries: make(map[string]Entry)}
}

// Store persists an entry. The data is copied: a caller mutating its slice
// afterwards cannot corrupt the cache.
func (d *DiskCache) Store(e Entry) {
	e.Data = append([]byte(nil), e.Data...)
	d.entries[e.Path] = e
}

// Load returns the entry for path. The data is a copy: a subscriber
// mutating the returned bytes cannot corrupt the cache.
func (d *DiskCache) Load(path string) (Entry, bool) {
	e, ok := d.entries[path]
	if ok {
		e.Data = append([]byte(nil), e.Data...)
	}
	return e, ok
}

// Len reports the number of cached configs.
func (d *DiskCache) Len() int { return len(d.entries) }

// UpdateFunc is an application callback fired when a config changes.
type UpdateFunc func(Entry)

// Source says which layer served a read, i.e. how fresh it can be.
type Source string

const (
	// SourceFresh: served from memory while the distribution plane is
	// healthy — the value is current (or a push away from it).
	SourceFresh Source = "fresh"
	// SourceCached: served from memory while the plane is down — it was
	// current when the plane died, but updates can no longer arrive.
	SourceCached Source = "cached"
	// SourceStale: served from the on-disk cache (proxy down or cold) —
	// possibly many versions old.
	SourceStale Source = "stale"
)

// ReadResult is a read with its staleness metadata: where the value came
// from and how long ago the proxy last confirmed it with an observer.
type ReadResult struct {
	Entry
	Source Source
	Age    time.Duration
	// OK is false when no layer could serve the path — or when StaleServe
	// is off and only a non-fresh layer could.
	OK bool
}

const (
	pingInterval  = 2 * time.Second
	fetchTimeout  = 3 * time.Second
	maxPingMisses = 2

	// Retry backoff: base<<attempt up to the cap, jittered ±50%.
	backoffBase = 500 * time.Millisecond
	backoffCap  = 8 * time.Second

	// Hedging: a second fetch to another observer fires if the first has
	// not answered within max(hedgeMinDelay, observed p99 fetch RTT).
	hedgeMinDelay = 250 * time.Millisecond

	// planeDownAfter consecutive failures marks one observer dead; when
	// every observer is dead the distribution plane is considered down.
	planeDownAfter = 2

	// rttWindow caps the fetch-RTT history used for the hedge delay.
	rttWindow = 64
)

type msgTickPing struct{}
type msgFetchTimeout struct{ ReqID int64 }
type msgRetryFetch struct {
	Path    string
	Attempt int
}
type msgHedgeFire struct{ ReqID int64 }

// fetchState is one outstanding fetch: the path, the base entry whose hash
// we advertised (so a "not modified" or delta reply can be materialized
// against it), and which observer we asked when.
type fetchState struct {
	path     string
	base     Entry
	haveBase bool
	observer simnet.NodeID
	sentAt   time.Time
	attempt  int
	hedge    bool
}

// obsStats is the per-observer health ledger behind failover decisions.
type obsStats struct {
	ok         int
	fail       int
	consecFail int
	rttEWMA    float64 // milliseconds
}

// subscription is one application callback, optionally with a liveness
// check; dead subscriptions are pruned at delivery time so a cancelled
// watcher cannot leak across proxy restarts.
type subscription struct {
	fn    UpdateFunc
	alive func() bool // nil = lives forever
}

// Proxy is the per-server config proxy. It is a simnet node; the local
// applications call its methods directly (they share the server).
type Proxy struct {
	id        simnet.NodeID
	net       *simnet.Network
	observers []simnet.NodeID // observers in this cluster
	current   int             // index of the connected observer
	disk      *DiskCache

	cache    map[string]Entry
	override map[string]Entry // canary temporary deployments win over cache
	watched  map[string]bool
	subs     map[string][]subscription
	inflight map[int64]fetchState // reqID -> outstanding fetch
	byPath   map[string][]int64   // path -> outstanding reqIDs (primary + hedge)
	nextReq  int64

	stats     map[simnet.NodeID]*obsStats
	rtts      []time.Duration // recent fetch RTTs (hedge delay source)
	planeDown bool            // every observer considered dead

	pingOutstanding int
	down            bool // proxy process crashed (fallback testing)

	// DeltaEncoding, when true (the default), advertises content hashes on
	// fetches so observers may reply "not modified" or with a delta.
	DeltaEncoding bool

	// StaleServe, when true (the default), lets reads degrade to cached or
	// on-disk values with explicit staleness metadata when fresh data is
	// unreachable. Off, such reads fail — the availability-vs-freshness
	// knob the availability experiment flips.
	StaleServe bool

	// Stats.
	Fetches     uint64
	WatchEvents uint64
	Failovers   uint64

	// Obs, when set, receives a materialize event each time the proxy
	// caches a new config version, and a read event the first time the
	// local applications read each version (nil = no instrumentation).
	Obs *obs.Registry
	// readZxid tracks the newest zxid already read per path, so only the
	// first application read of each version is recorded.
	readZxid map[string]int64
}

// New creates a proxy on the network at the placement, connected to the
// given same-cluster observers.
func New(net *simnet.Network, id simnet.NodeID, placement simnet.Placement, observers []simnet.NodeID, disk *DiskCache) *Proxy {
	if disk == nil {
		disk = NewDiskCache()
	}
	p := &Proxy{
		id:            id,
		net:           net,
		observers:     observers,
		disk:          disk,
		cache:         make(map[string]Entry),
		override:      make(map[string]Entry),
		watched:       make(map[string]bool),
		subs:          make(map[string][]subscription),
		inflight:      make(map[int64]fetchState),
		byPath:        make(map[string][]int64),
		stats:         make(map[simnet.NodeID]*obsStats),
		readZxid:      make(map[string]int64),
		DeltaEncoding: true,
		StaleServe:    true,
	}
	if len(observers) > 0 {
		p.current = int(net.RNG().Intn(len(observers)))
	}
	net.AddNode(id, placement, p)
	net.SetTimer(id, pingInterval, msgTickPing{})
	return p
}

// ID returns the proxy's node id.
func (p *Proxy) ID() simnet.NodeID { return p.id }

// Disk exposes the on-disk cache (the client library fallback reads it).
func (p *Proxy) Disk() *DiskCache { return p.disk }

// PlaneDown reports whether the proxy currently considers every observer
// unreachable (the distribution plane lost).
func (p *Proxy) PlaneDown() bool { return p.planeDown }

// ObserverHealth exposes the per-observer health samples feeding failover
// (tests and dashboards).
func (p *Proxy) ObserverHealth() map[simnet.NodeID]health.Sample {
	out := make(map[simnet.NodeID]health.Sample, len(p.observers))
	for _, o := range p.observers {
		out[o] = p.sampleOf(o)
	}
	return out
}

// Crash simulates the proxy process dying. Cached state in memory is lost;
// the disk cache survives.
func (p *Proxy) Crash() {
	p.down = true
	p.net.Fail(p.id)
}

// Restart brings the proxy back with a cold in-memory cache. Application
// subscriptions survive (the apps share the server and resubscribe
// implicitly), but dead ones are pruned rather than revived.
func (p *Proxy) Restart() {
	p.down = false
	p.cache = make(map[string]Entry)
	p.override = make(map[string]Entry)
	p.inflight = make(map[int64]fetchState)
	p.byPath = make(map[string][]int64)
	p.readZxid = make(map[string]int64)
	p.stats = make(map[simnet.NodeID]*obsStats)
	p.rtts = nil
	p.planeDown = false
	p.pingOutstanding = 0
	for path := range p.subs {
		p.pruneSubs(path)
	}
	p.net.Recover(p.id)
}

// OnRestart implements simnet.Restarter.
func (p *Proxy) OnRestart(ctx *simnet.Context) {
	ctx.SetTimer(pingInterval, msgTickPing{})
	// Re-fetch everything the applications subscribed to. The in-memory
	// cache is cold, so hashes are advertised from the disk cache; a delta
	// that no longer applies falls back to a full snapshot.
	for path := range p.watched {
		p.sendFetch(ctx, path)
	}
}

// Down reports whether the proxy process is crashed.
func (p *Proxy) Down() bool { return p.down }

func (p *Proxy) observer() simnet.NodeID {
	if len(p.observers) == 0 {
		return ""
	}
	return p.observers[p.current%len(p.observers)]
}

func (p *Proxy) stat(id simnet.NodeID) *obsStats {
	st, ok := p.stats[id]
	if !ok {
		st = &obsStats{}
		p.stats[id] = st
	}
	return st
}

// sampleOf folds one observer's ledger into a health sample. Consecutive
// failures dominate the score (each one outweighs any latency), so a dead
// observer always ranks below a slow one.
func (p *Proxy) sampleOf(id simnet.NodeID) health.Sample {
	st := p.stat(id)
	er := float64(st.consecFail)
	if total := st.ok + st.fail; total > 0 {
		er += float64(st.fail) / float64(total)
	}
	return health.Sample{
		health.MetricErrorRate: er,
		health.MetricLatencyMs: st.rttEWMA,
	}
}

func (p *Proxy) recordFailure(id simnet.NodeID) {
	if id == "" {
		return
	}
	st := p.stat(id)
	st.fail++
	st.consecFail++
	if !p.planeDown && p.allObserversDead() {
		p.planeDown = true
		p.Obs.Add("proxy.plane.down", 1)
	}
}

func (p *Proxy) recordSuccess(ctx *simnet.Context, id simnet.NodeID, rtt time.Duration) {
	st := p.stat(id)
	st.ok++
	st.consecFail = 0
	if rtt >= 0 {
		ms := float64(rtt) / float64(time.Millisecond)
		if st.rttEWMA == 0 {
			st.rttEWMA = ms
		} else {
			st.rttEWMA = 0.8*st.rttEWMA + 0.2*ms
		}
	}
	if p.planeDown {
		// The plane healed: resubscribe everything. Fetches advertise the
		// hashes we hold, so catch-up is a delta (or "not modified") per
		// path, falling back to full snapshots where our base diverged.
		p.planeDown = false
		p.Obs.Add("proxy.plane.heal", 1)
		for path := range p.watched {
			if len(p.byPath[path]) == 0 {
				p.doFetch(ctx, path, true, 0)
			}
		}
	}
}

func (p *Proxy) allObserversDead() bool {
	if len(p.observers) == 0 {
		return true
	}
	for _, o := range p.observers {
		if p.stat(o).consecFail < planeDownAfter {
			return false
		}
	}
	return true
}

// backoff computes the retry delay for the given attempt: exponential from
// backoffBase up to backoffCap, jittered to 50–100% of the step with the
// network's deterministic RNG so runs stay reproducible.
func (p *Proxy) backoff(attempt int) time.Duration {
	d := backoffBase
	for i := 0; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	half := int64(d / 2)
	return time.Duration(half + int64(p.net.RNG().Uint64()%uint64(half)))
}

// hedgeDelay derives the hedged-fetch trigger from the observed p99 fetch
// RTT — hedges fire only for outlier-slow fetches, not the common case.
func (p *Proxy) hedgeDelay() time.Duration {
	if len(p.rtts) == 0 {
		return 4 * hedgeMinDelay
	}
	s := append([]time.Duration(nil), p.rtts...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	p99 := s[len(s)*99/100]
	if p99 < hedgeMinDelay {
		return hedgeMinDelay
	}
	return p99
}

func (p *Proxy) recordRTT(rtt time.Duration) {
	if len(p.rtts) >= rttWindow {
		copy(p.rtts, p.rtts[1:])
		p.rtts = p.rtts[:rttWindow-1]
	}
	p.rtts = append(p.rtts, rtt)
}

// failover replaces the current observer with the healthiest alternative
// (health-scored; deterministic tie-break), or round-robins when the whole
// plane looks dead and scores cannot distinguish candidates. The old
// observer is told to drop our watches so its watch table does not leak
// registrations until its own session sweep fires.
func (p *Proxy) failover(ctx *simnet.Context) {
	if len(p.observers) <= 1 {
		return
	}
	old := p.observer()
	if p.planeDown {
		p.current = (p.current + 1) % len(p.observers)
	} else {
		samples := make(map[simnet.NodeID]health.Sample, len(p.observers)-1)
		for _, o := range p.observers {
			if o != old {
				samples[o] = p.sampleOf(o)
			}
		}
		best := health.Rank(samples)[0].ID
		for i, o := range p.observers {
			if o == best {
				p.current = i
			}
		}
	}
	p.Failovers++
	p.pingOutstanding = 0
	p.Obs.Add("proxy.failover", 1)
	for path := range p.watched {
		ctx.Send(old, zeus.MsgUnwatch{Path: path})
	}
	// Re-establish fetches+watches on the new observer, bypassing the
	// single-flight guard (the old observer may never answer). When the
	// plane is down this would be a refetch storm every timeout — the
	// per-path backoff retries own recovery instead.
	if !p.planeDown {
		for path := range p.watched {
			p.forceFetch(ctx, path, true)
		}
	}
}

// Want asks the proxy to fetch and keep a config warm (with a watch). The
// application's startup request path.
func (p *Proxy) Want(path string) {
	if p.down {
		return
	}
	ctx := simnet.MakeContext(p.net, p.id)
	p.watched[path] = true
	if _, cached := p.cache[path]; !cached {
		p.sendFetch(&ctx, path)
	}
}

// Subscribe registers an application callback for a path and keeps the
// config warm. The callback fires on every subsequent change, forever.
func (p *Proxy) Subscribe(path string, fn UpdateFunc) {
	p.SubscribeWhile(path, nil, fn)
}

// SubscribeWhile registers a callback that lives only while alive()
// returns true (nil = forever). Dead subscriptions are pruned at delivery
// time and across restarts — the cancellation hook the context-aware
// client API builds on.
func (p *Proxy) SubscribeWhile(path string, alive func() bool, fn UpdateFunc) {
	p.subs[path] = append(p.subs[path], subscription{fn: fn, alive: alive})
	p.Want(path)
}

// SubCount reports the live subscriptions for a path (leak tests).
func (p *Proxy) SubCount(path string) int {
	p.pruneSubs(path)
	return len(p.subs[path])
}

// InflightCount reports how many fetches are outstanding (leak checks).
func (p *Proxy) InflightCount() int { return len(p.inflight) }

// pruneSubs drops subscriptions whose liveness check fails.
func (p *Proxy) pruneSubs(path string) {
	subs := p.subs[path]
	kept := subs[:0]
	for _, s := range subs {
		if s.alive != nil && !s.alive() {
			p.Obs.Add("proxy.sub.pruned", 1)
			continue
		}
		kept = append(kept, s)
	}
	if len(kept) == 0 {
		delete(p.subs, path)
	} else {
		p.subs[path] = kept
	}
}

// notify fires the live subscriptions for a path, pruning dead ones.
func (p *Proxy) notify(path string, e Entry) {
	p.pruneSubs(path)
	for _, s := range p.subs[path] {
		s.fn(e)
	}
}

// SetOverride temporarily deploys a config to this server only — the
// canary service's mechanism ("the canary service talks to the proxies …
// to temporarily deploy the new config", §3.3). Subscribers fire as if the
// config changed.
func (p *Proxy) SetOverride(path string, data []byte) {
	e := Entry{Path: path, Exists: true, Data: data, Version: -1}
	p.override[path] = e
	p.notify(path, e)
}

// ClearOverride removes a temporary deployment; subscribers are re-fed the
// committed value (rollback).
func (p *Proxy) ClearOverride(path string) {
	if _, ok := p.override[path]; !ok {
		return
	}
	delete(p.override, path)
	if e, ok := p.cache[path]; ok {
		p.notify(path, e)
	}
}

// CachedPaths lists the paths currently in the in-memory cache or
// overridden (the application-visible config set on this server).
func (p *Proxy) CachedPaths() []string {
	seen := make(map[string]bool, len(p.cache)+len(p.override))
	out := make([]string, 0, len(p.cache)+len(p.override))
	for path := range p.cache {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for path := range p.override {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}

// Overridden reports whether path currently has a canary override.
func (p *Proxy) Overridden(path string) bool {
	_, ok := p.override[path]
	return ok
}

// Read returns the config at path with staleness metadata, degrading
// through the layers: override and memory while the proxy process is up
// (fresh if the plane is healthy, cached if not), then the on-disk cache
// (stale). With StaleServe off, only fresh reads succeed — the paper's
// choice is availability over freshness, so on is the default.
func (p *Proxy) Read(path string) ReadResult {
	now := p.net.Now()
	if !p.down {
		if e, ok := p.override[path]; ok {
			return ReadResult{Entry: e, Source: SourceFresh, OK: true}
		}
		if e, ok := p.cache[path]; ok {
			src := SourceFresh
			if p.planeDown {
				src = SourceCached
			}
			if src != SourceFresh && !p.StaleServe {
				p.Obs.Add("proxy.read.refused", 1)
				return ReadResult{Source: src, Age: now.Sub(e.Fetched)}
			}
			if e.Zxid > p.readZxid[path] {
				p.readZxid[path] = e.Zxid
				p.Obs.PathEvent(path, obs.PropEvent{
					Stage: obs.EvClientRead, Node: string(p.id),
					Zxid: e.Zxid, At: now,
				})
			}
			if src != SourceFresh {
				p.Obs.Add("proxy.read.degraded", 1)
			}
			return ReadResult{Entry: e, Source: src, Age: now.Sub(e.Fetched), OK: true}
		}
		p.Want(path) // warm it for next time
	}
	// Fall back to the on-disk cache (proxy down or not yet fetched).
	e, ok := p.disk.Load(path)
	if !ok {
		return ReadResult{Source: SourceStale}
	}
	if !p.StaleServe {
		p.Obs.Add("proxy.read.refused", 1)
		return ReadResult{Source: SourceStale, Age: now.Sub(e.Fetched)}
	}
	p.Obs.Add("proxy.read.stale", 1)
	return ReadResult{Entry: e, Source: SourceStale, Age: now.Sub(e.Fetched), OK: true}
}

// Get returns the config at path. The second result is false when the
// config is not available from any layer (override, memory, disk).
// Deprecated: use Read, which also reports staleness metadata.
func (p *Proxy) Get(path string) (Entry, bool) {
	r := p.Read(path)
	return r.Entry, r.OK
}

// sendFetch issues a fetch unless one is already in flight for the path
// (single-flight: a second Want before the reply arrives must not send a
// second MsgFetch).
func (p *Proxy) sendFetch(ctx *simnet.Context, path string) {
	if len(p.byPath[path]) > 0 {
		p.Obs.Add("proxy.fetch.singleflight", 1)
		return
	}
	p.doFetch(ctx, path, true, 0)
}

// forceFetch abandons all outstanding fetches for the path and issues a
// new one (failover, or delta fallback with advertise=false to demand a
// full snapshot).
func (p *Proxy) forceFetch(ctx *simnet.Context, path string, advertise bool) {
	p.dropPath(path)
	p.doFetch(ctx, path, advertise, 0)
}

// dropPath forgets every outstanding fetch for a path.
func (p *Proxy) dropPath(path string) {
	for _, id := range p.byPath[path] {
		delete(p.inflight, id)
	}
	delete(p.byPath, path)
}

// dropReq forgets one outstanding fetch.
func (p *Proxy) dropReq(reqID int64) {
	st, ok := p.inflight[reqID]
	if !ok {
		return
	}
	delete(p.inflight, reqID)
	ids := p.byPath[st.path]
	kept := ids[:0]
	for _, id := range ids {
		if id != reqID {
			kept = append(kept, id)
		}
	}
	if len(kept) == 0 {
		delete(p.byPath, st.path)
	} else {
		p.byPath[st.path] = kept
	}
}

// doFetch sends a fetch to the current observer and arms its deadline and
// hedge timers.
func (p *Proxy) doFetch(ctx *simnet.Context, path string, advertise bool, attempt int) {
	p.fetchFrom(ctx, path, p.observer(), advertise, attempt, false)
}

func (p *Proxy) fetchFrom(ctx *simnet.Context, path string, target simnet.NodeID, advertise bool, attempt int, hedge bool) {
	p.nextReq++
	st := fetchState{path: path, observer: target, sentAt: ctx.Now(), attempt: attempt, hedge: hedge}
	if advertise && p.DeltaEncoding {
		if e, ok := p.cache[path]; ok && e.Exists {
			st.base, st.haveBase = e, true
		} else if e, ok := p.disk.Load(path); ok && e.Exists {
			st.base, st.haveBase = e, true
		}
	}
	p.inflight[p.nextReq] = st
	p.byPath[path] = append(p.byPath[path], p.nextReq)
	p.Fetches++
	p.Obs.Add("proxy.fetch.sent", 1)
	if target == "" {
		return
	}
	m := zeus.MsgFetch{ReqID: p.nextReq, Path: path, Watch: true}
	if st.haveBase {
		m.Have = true
		m.HaveHash = vcs.HashBytes(st.base.Data)
	}
	ctx.Send(target, m)
	ctx.SetTimer(fetchTimeout, msgFetchTimeout{ReqID: p.nextReq})
	if !hedge && len(p.observers) > 1 {
		ctx.SetTimer(p.hedgeDelay(), msgHedgeFire{ReqID: p.nextReq})
	}
}

// HandleMessage implements simnet.Handler.
func (p *Proxy) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case zeus.MsgFetchReply:
		p.onFetchReply(ctx, from, m)
	case zeus.MsgWatchEvent:
		if from != p.observer() {
			return // stale watch from a previous observer
		}
		p.WatchEvents++
		p.onWatchEvent(ctx, from, m)
	case msgFetchTimeout:
		p.onFetchTimeout(ctx, m)
	case msgHedgeFire:
		p.onHedgeFire(ctx, m)
	case msgRetryFetch:
		if p.watched[m.Path] && len(p.byPath[m.Path]) == 0 {
			p.doFetch(ctx, m.Path, true, m.Attempt)
		}
	case msgTickPing:
		ctx.SetTimer(pingInterval, msgTickPing{})
		if p.pingOutstanding >= maxPingMisses {
			p.recordFailure(p.observer())
			p.failover(ctx)
		}
		if obs := p.observer(); obs != "" {
			p.pingOutstanding++
			ctx.Send(obs, zeus.MsgPing{})
		}
	case zeus.MsgPong:
		if from == p.observer() {
			p.pingOutstanding = 0
		}
		p.recordSuccess(ctx, from, -1)
	}
}

// onFetchTimeout handles a fetch deadline expiring: mark the observer
// unhealthy, fail over off it if it is still current, and schedule a
// backed-off retry if no sibling fetch (hedge) remains in flight.
func (p *Proxy) onFetchTimeout(ctx *simnet.Context, m msgFetchTimeout) {
	st, ok := p.inflight[m.ReqID]
	if !ok {
		return
	}
	p.dropReq(m.ReqID)
	p.Obs.Add("proxy.fetch.timeout", 1)
	p.recordFailure(st.observer)
	if st.observer == p.observer() {
		p.failover(ctx)
	}
	if p.watched[st.path] && len(p.byPath[st.path]) == 0 {
		attempt := st.attempt + 1
		ctx.SetTimer(p.backoff(attempt), msgRetryFetch{Path: st.path, Attempt: attempt})
		p.Obs.Add("proxy.fetch.retry", 1)
	}
}

// onHedgeFire sends the hedged duplicate of a still-unanswered fetch to
// the next-healthiest observer. First reply wins; the loser is discarded
// by the byPath sweep in onFetchReply.
func (p *Proxy) onHedgeFire(ctx *simnet.Context, m msgHedgeFire) {
	st, ok := p.inflight[m.ReqID]
	if !ok {
		return // answered already — the common case
	}
	samples := make(map[simnet.NodeID]health.Sample, len(p.observers)-1)
	for _, o := range p.observers {
		if o != st.observer {
			samples[o] = p.sampleOf(o)
		}
	}
	if len(samples) == 0 {
		return
	}
	p.Obs.Add("proxy.fetch.hedged", 1)
	p.fetchFrom(ctx, st.path, health.Rank(samples)[0].ID, st.haveBase, st.attempt, true)
}

func (p *Proxy) onFetchReply(ctx *simnet.Context, from simnet.NodeID, m zeus.MsgFetchReply) {
	st, ok := p.inflight[m.ReqID]
	if !ok {
		return
	}
	rtt := ctx.Now().Sub(st.sentAt)
	// First reply wins: discard the sibling (primary or hedge) before the
	// success bookkeeping, so a plane-heal resubscribe sweep sees this
	// path as idle and re-establishes its watch too.
	p.dropPath(st.path)
	// The replying observer holds our watch now (fetches register it); if
	// it is not the observer we point at — a hedge won, or we failed over
	// while the fetch was in flight — re-point at it, else its pushes
	// would be discarded as stale and the path would freeze.
	if from != p.observer() {
		for i, o := range p.observers {
			if o == from {
				p.current = i
				p.pingOutstanding = 0
			}
		}
	}
	p.recordRTT(rtt)
	p.recordSuccess(ctx, from, rtt)
	if st.hedge {
		p.Obs.Add("proxy.fetch.hedge_won", 1)
	}
	if !m.Exists {
		p.apply(ctx, Entry{Path: m.Path, Fetched: ctx.Now()}, from)
		return
	}
	if m.NotModified {
		if !st.haveBase {
			// The observer claims our copy is current but we advertised
			// nothing — protocol confusion; demand the full snapshot.
			p.Obs.Add("proxy.delta.fallback", 1)
			p.forceFetch(ctx, m.Path, false)
			return
		}
		e := st.base
		e.Exists = true
		e.Version, e.Zxid, e.Fetched = m.Version, m.Zxid, ctx.Now()
		p.apply(ctx, e, from)
		return
	}
	data, err := m.Payload.Resolve(st.base.Data)
	if err != nil {
		// Hash miss (e.g. our disk-cache base predates what the observer
		// delta'd against): fall back to a full snapshot.
		p.Obs.Add("proxy.delta.fallback", 1)
		p.forceFetch(ctx, m.Path, false)
		return
	}
	p.apply(ctx, Entry{Path: m.Path, Exists: true, Data: data,
		Version: m.Version, Zxid: m.Zxid, Fetched: ctx.Now()}, from)
}

func (p *Proxy) onWatchEvent(ctx *simnet.Context, from simnet.NodeID, m zeus.MsgWatchEvent) {
	if old, ok := p.cache[m.Path]; ok && m.Zxid <= old.Zxid {
		return // already current (or newer) — nothing to resolve
	}
	p.recordSuccess(ctx, from, -1)
	if m.Delete {
		p.apply(ctx, Entry{Path: m.Path, Fetched: ctx.Now()}, from)
		return
	}
	var base []byte
	if e, ok := p.cache[m.Path]; ok && e.Exists {
		base = e.Data
	}
	data, err := m.Payload.Resolve(base)
	if err != nil {
		// The delta was made against a version we never saw (missed event,
		// restart): recover via full-snapshot fetch.
		p.Obs.Add("proxy.delta.fallback", 1)
		p.forceFetch(ctx, m.Path, false)
		return
	}
	p.apply(ctx, Entry{Path: m.Path, Exists: true, Data: data,
		Version: m.Version, Zxid: m.Zxid, Fetched: ctx.Now()}, from)
}

// apply integrates a new entry if it is not older than what we have. via
// is the observer that delivered it (the upstream hop in the push tree).
func (p *Proxy) apply(ctx *simnet.Context, e Entry, via simnet.NodeID) {
	if old, ok := p.cache[e.Path]; ok && e.Zxid < old.Zxid {
		return
	}
	changed := true
	if old, ok := p.cache[e.Path]; ok && old.Zxid == e.Zxid {
		changed = false
	}
	p.cache[e.Path] = e
	p.disk.Store(e)
	if changed {
		p.Obs.PathEvent(e.Path, obs.PropEvent{
			Stage: obs.EvProxyMaterialize, Node: string(p.id), Via: string(via),
			Zxid: e.Zxid, At: ctx.Now(),
		})
		p.notify(e.Path, e)
	}
}
