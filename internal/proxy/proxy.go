// Package proxy implements the Configerator Proxy that runs on every
// production server (§3.4, bottom of Figure 3).
//
// The proxy randomly picks a Zeus observer in its own cluster, fetches the
// configs the local applications need (it is not a full replica — it only
// caches what is asked for), leaves watches so updates are pushed, and
// stores everything in an on-disk cache. Failure handling follows the
// paper (§4.1): fetches carry deadlines and retry with exponentially
// backed-off, deterministically jittered delays; a slow observer gets a
// hedged second fetch after a p99-derived delay; a failed observer is
// replaced by the healthiest alternative (scored from observed error rate
// and latency); and if every Configerator component fails, reads degrade
// to the on-disk cache with explicit staleness metadata — a config that
// was ever fetched remains available (stale but usable) no matter what.
//
// Read hot path. Configs are read many orders of magnitude more often than
// they change (the paper's motivating ratio), so the in-memory store is an
// immutable snapshot behind an atomic pointer: Read is one atomic load plus
// map lookups — no mutex, no allocation — and is safe from any application
// goroutine concurrently with updates. Writers (watch deliveries, canary
// overrides, plane-down transitions, crash/restart) build the next snapshot
// copy-on-write and publish it with a single pointer swap; they run on the
// single-threaded simulation loop, so the copy cost is paid off the read
// path entirely. Cache misses cannot touch the simulator's event queue from
// a reader goroutine, so Read records them in a thread-safe pending set
// that the proxy drains (issuing fetch+watch) on its next message or ping
// tick.
package proxy

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"configerator/internal/health"
	"configerator/internal/intern"
	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/vcs"
	"configerator/internal/zeus"
)

// Memo is the per-version decode slot carried by a cache entry: the client
// library parses a config version once and publishes the result here, so
// every subsequent reader of that version shares one decode. Each new
// version gets a fresh slot, so a stale parse can never be served. The
// zero Memo is empty and ready for use.
type Memo struct{ v atomic.Value }

// Load returns the memoized value, or nil when nothing has been stored
// (or when m is nil — disk-cache entries carry no memo).
func (m *Memo) Load() any {
	if m == nil {
		return nil
	}
	return m.v.Load()
}

// Store publishes the memoized value. Per atomic.Value's contract a slot
// must only ever hold one concrete type; losing a racing duplicate store
// is harmless — both decodes of the same bytes are equal.
func (m *Memo) Store(v any) {
	if m == nil || v == nil {
		return
	}
	m.v.Store(v)
}

// Entry is one cached config.
type Entry struct {
	Path    string
	Exists  bool
	Data    []byte
	Version int64
	Zxid    int64
	// Hash is the content hash of Data (vcs.HashBytes), computed once when
	// the entry is materialized — off the read path — so convergence
	// heartbeats can compare against Zeus watermarks without rehashing.
	Hash uint64
	// Fetched is when the proxy last confirmed this entry with an
	// observer (virtual time).
	Fetched time.Time

	// memo is the shared decode slot for this (path, version). It rides on
	// the entry so subscribers and readers resolve the same slot without a
	// second lookup.
	memo *Memo
}

// Memo returns the entry's decode-memo slot. It is nil for entries loaded
// from the on-disk cache (those are re-parsed on use).
func (e Entry) Memo() *Memo { return e.memo }

// DiskCache is the on-disk cache shared between the proxy process and the
// client library's failure fallback. It survives proxy crashes. It is
// safe for concurrent use: reader goroutines fall back to it while the
// simulation loop stores updates.
type DiskCache struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewDiskCache returns an empty cache.
func NewDiskCache() *DiskCache {
	return &DiskCache{entries: make(map[string]Entry)}
}

// Store persists an entry. The data is copied: a caller mutating its slice
// afterwards cannot corrupt the cache. The in-memory decode memo does not
// survive the trip to disk.
func (d *DiskCache) Store(e Entry) {
	e.Data = append([]byte(nil), e.Data...)
	e.memo = nil
	d.mu.Lock()
	d.entries[e.Path] = e
	d.mu.Unlock()
}

// Load returns the entry for path. The data is a copy: a subscriber
// mutating the returned bytes cannot corrupt the cache.
func (d *DiskCache) Load(path string) (Entry, bool) {
	d.mu.RLock()
	e, ok := d.entries[path]
	d.mu.RUnlock()
	if ok {
		e.Data = append([]byte(nil), e.Data...)
	}
	return e, ok
}

// Len reports the number of cached configs.
func (d *DiskCache) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// UpdateFunc is an application callback fired when a config changes.
type UpdateFunc func(Entry)

// Source says which layer served a read, i.e. how fresh it can be.
type Source string

const (
	// SourceFresh: served from memory while the distribution plane is
	// healthy — the value is current (or a push away from it).
	SourceFresh Source = "fresh"
	// SourceCached: served from memory while the plane is down — it was
	// current when the plane died, but updates can no longer arrive.
	SourceCached Source = "cached"
	// SourceStale: served from the on-disk cache (proxy down or cold) —
	// possibly many versions old.
	SourceStale Source = "stale"
)

// ReadResult is a read with its staleness metadata: where the value came
// from and how long ago the proxy last confirmed it with an observer.
type ReadResult struct {
	Entry
	Source Source
	Age    time.Duration
	// OK is false when no layer could serve the path — or when StaleServe
	// is off and only a non-fresh layer could.
	OK bool
}

const (
	pingInterval  = 2 * time.Second
	fetchTimeout  = 3 * time.Second
	maxPingMisses = 2

	// Retry backoff: base<<attempt up to the cap, jittered ±50%.
	backoffBase = 500 * time.Millisecond
	backoffCap  = 8 * time.Second

	// Hedging: a second fetch to another observer fires if the first has
	// not answered within max(hedgeMinDelay, observed p99 fetch RTT).
	hedgeMinDelay = 250 * time.Millisecond

	// planeDownAfter consecutive failures marks one observer dead; when
	// every observer is dead the distribution plane is considered down.
	planeDownAfter = 2

	// rttWindow caps the fetch-RTT history used for the hedge delay.
	rttWindow = 64
)

type msgTickPing struct{}
type msgFetchTimeout struct{ ReqID int64 }
type msgRetryFetch struct {
	Path    string
	Attempt int
}
type msgHedgeFire struct{ ReqID int64 }

// fetchState is one outstanding fetch: the path, the base entry whose hash
// we advertised (so a "not modified" or delta reply can be materialized
// against it), and which observer we asked when.
type fetchState struct {
	path     string
	base     Entry
	haveBase bool
	observer simnet.NodeID
	sentAt   time.Time
	attempt  int
	hedge    bool
}

// obsStats is the per-observer health ledger behind failover decisions.
type obsStats struct {
	ok         int
	fail       int
	consecFail int
	rttEWMA    float64 // milliseconds
}

// subscription is one application callback, optionally with a liveness
// check; dead subscriptions are pruned at delivery time so a cancelled
// watcher cannot leak across proxy restarts.
type subscription struct {
	fn    UpdateFunc
	alive func() bool // nil = lives forever
}

// entryState is one config in the read snapshot: the immutable entry plus
// the newest zxid an application has already read (so only the first read
// of each version emits a propagation event). The mark is atomic because
// first-reads race across application goroutines.
type entryState struct {
	e        Entry
	readMark atomic.Int64
}

// snapshot is the immutable in-memory store published to readers. A
// snapshot and everything reachable from it is never mutated after
// publication (readMark aside, which is atomic); writers clone-and-swap.
type snapshot struct {
	entries   map[string]*entryState
	overrides map[string]*entryState // canary temporary deployments win
	planeDown bool                   // every observer considered dead
	down      bool                   // proxy process crashed
}

// Proxy is the per-server config proxy. It is a simnet node; the local
// applications call its methods directly (they share the server).
// Read (and the client library's Get built on it) is safe to call from any
// goroutine; every other method belongs to the simulation/driver thread.
type Proxy struct {
	id        simnet.NodeID
	net       *simnet.Network
	observers []simnet.NodeID // observers in this cluster
	current   int             // index of the connected observer
	disk      *DiskCache

	// snap is the read snapshot. Readers do one atomic load; writers
	// serialize on wmu, clone, and swap.
	snap atomic.Pointer[snapshot]
	wmu  sync.Mutex

	watched  map[string]bool
	subs     map[string][]subscription
	inflight map[int64]fetchState // reqID -> outstanding fetch
	byPath   map[string][]int64   // path -> outstanding reqIDs (primary + hedge)
	nextReq  int64

	// Cache misses observed by reader goroutines. Readers cannot touch the
	// simulator's event queue, so Read parks the path here and the proxy
	// drains the set (Want-ing each path) on its next message or ping tick.
	missMu      sync.Mutex
	missSet     map[string]struct{}
	missPending atomic.Bool

	stats map[simnet.NodeID]*obsStats
	rtts  []time.Duration // recent fetch RTTs (hedge delay source)

	pingOutstanding int

	// Convergence-heartbeat config (EnableMonitor): the monitor node and
	// cadence. "" = monitoring off.
	monTarget simnet.NodeID
	monEvery  time.Duration

	// DeltaEncoding, when true (the default), advertises content hashes on
	// fetches so observers may reply "not modified" or with a delta.
	DeltaEncoding bool

	// StaleServe, when true (the default), lets reads degrade to cached or
	// on-disk values with explicit staleness metadata when fresh data is
	// unreachable. Off, such reads fail — the availability-vs-freshness
	// knob the availability experiment flips.
	StaleServe bool

	// Stats.
	Fetches     uint64
	WatchEvents uint64
	Failovers   uint64

	// Obs, when set, receives a materialize event each time the proxy
	// caches a new config version, and a read event the first time the
	// local applications read each version (nil = no instrumentation).
	Obs *obs.Registry
}

// New creates a proxy on the network at the placement, connected to the
// given same-cluster observers.
func New(net *simnet.Network, id simnet.NodeID, placement simnet.Placement, observers []simnet.NodeID, disk *DiskCache) *Proxy {
	if disk == nil {
		disk = NewDiskCache()
	}
	p := &Proxy{
		id:            id,
		net:           net,
		observers:     observers,
		disk:          disk,
		watched:       make(map[string]bool),
		subs:          make(map[string][]subscription),
		inflight:      make(map[int64]fetchState),
		byPath:        make(map[string][]int64),
		stats:         make(map[simnet.NodeID]*obsStats),
		DeltaEncoding: true,
		StaleServe:    true,
	}
	p.snap.Store(&snapshot{
		entries:   make(map[string]*entryState),
		overrides: make(map[string]*entryState),
	})
	if len(observers) > 0 {
		p.current = int(net.RNG().Intn(len(observers)))
	}
	net.AddNode(id, placement, p)
	net.SetTimer(id, pingInterval, msgTickPing{})
	return p
}

// mutateSnap clones the current snapshot, applies mut, and publishes the
// result with one atomic swap. Copy-on-write: O(cached paths) per
// mutation, paid by the simulation loop — never by readers.
func (p *Proxy) mutateSnap(mut func(*snapshot)) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	cur := p.snap.Load()
	next := &snapshot{
		entries:   make(map[string]*entryState, len(cur.entries)+1),
		overrides: make(map[string]*entryState, len(cur.overrides)),
		planeDown: cur.planeDown,
		down:      cur.down,
	}
	for k, v := range cur.entries {
		next.entries[k] = v
	}
	for k, v := range cur.overrides {
		next.overrides[k] = v
	}
	mut(next)
	p.snap.Store(next)
}

// ID returns the proxy's node id.
func (p *Proxy) ID() simnet.NodeID { return p.id }

// Disk exposes the on-disk cache (the client library fallback reads it).
func (p *Proxy) Disk() *DiskCache { return p.disk }

// PlaneDown reports whether the proxy currently considers every observer
// unreachable (the distribution plane lost).
func (p *Proxy) PlaneDown() bool { return p.snap.Load().planeDown }

// ObserverHealth exposes the per-observer health samples feeding failover
// (tests and dashboards).
func (p *Proxy) ObserverHealth() map[simnet.NodeID]health.Sample {
	out := make(map[simnet.NodeID]health.Sample, len(p.observers))
	for _, o := range p.observers {
		out[o] = p.sampleOf(o)
	}
	return out
}

// Crash simulates the proxy process dying. Cached state in memory is lost;
// the disk cache survives.
func (p *Proxy) Crash() {
	p.mutateSnap(func(s *snapshot) { s.down = true })
	p.net.Fail(p.id)
}

// Restart brings the proxy back with a cold in-memory cache. Application
// subscriptions survive (the apps share the server and resubscribe
// implicitly), but dead ones are pruned rather than revived.
func (p *Proxy) Restart() {
	p.wmu.Lock()
	p.snap.Store(&snapshot{
		entries:   make(map[string]*entryState),
		overrides: make(map[string]*entryState),
	})
	p.wmu.Unlock()
	p.inflight = make(map[int64]fetchState)
	p.byPath = make(map[string][]int64)
	p.stats = make(map[simnet.NodeID]*obsStats)
	p.rtts = nil
	p.pingOutstanding = 0
	for path := range p.subs {
		p.pruneSubs(path)
	}
	p.net.Recover(p.id)
}

// OnRestart implements simnet.Restarter.
func (p *Proxy) OnRestart(ctx *simnet.Context) {
	ctx.SetTimer(pingInterval, msgTickPing{})
	if p.monTarget != "" {
		// Timers die with the crashed node: re-arm the heartbeat tick.
		ctx.SetTimer(p.monEvery, msgTickMonitor{})
	}
	// Re-fetch everything the applications subscribed to. The in-memory
	// cache is cold, so hashes are advertised from the disk cache; a delta
	// that no longer applies falls back to a full snapshot.
	for path := range p.watched {
		p.sendFetch(ctx, path)
	}
}

// Down reports whether the proxy process is crashed.
func (p *Proxy) Down() bool { return p.snap.Load().down }

func (p *Proxy) observer() simnet.NodeID {
	if len(p.observers) == 0 {
		return ""
	}
	return p.observers[p.current%len(p.observers)]
}

func (p *Proxy) stat(id simnet.NodeID) *obsStats {
	st, ok := p.stats[id]
	if !ok {
		st = &obsStats{}
		p.stats[id] = st
	}
	return st
}

// sampleOf folds one observer's ledger into a health sample. Consecutive
// failures dominate the score (each one outweighs any latency), so a dead
// observer always ranks below a slow one.
func (p *Proxy) sampleOf(id simnet.NodeID) health.Sample {
	st := p.stat(id)
	er := float64(st.consecFail)
	if total := st.ok + st.fail; total > 0 {
		er += float64(st.fail) / float64(total)
	}
	return health.Sample{
		health.MetricErrorRate: er,
		health.MetricLatencyMs: st.rttEWMA,
	}
}

func (p *Proxy) recordFailure(id simnet.NodeID) {
	if id == "" {
		return
	}
	st := p.stat(id)
	st.fail++
	st.consecFail++
	if !p.snap.Load().planeDown && p.allObserversDead() {
		p.mutateSnap(func(s *snapshot) { s.planeDown = true })
		p.Obs.Add("proxy.plane.down", 1)
	}
}

func (p *Proxy) recordSuccess(ctx *simnet.Context, id simnet.NodeID, rtt time.Duration) {
	st := p.stat(id)
	st.ok++
	st.consecFail = 0
	if rtt >= 0 {
		ms := float64(rtt) / float64(time.Millisecond)
		if st.rttEWMA == 0 {
			st.rttEWMA = ms
		} else {
			st.rttEWMA = 0.8*st.rttEWMA + 0.2*ms
		}
	}
	if p.snap.Load().planeDown {
		// The plane healed: resubscribe everything. Fetches advertise the
		// hashes we hold, so catch-up is a delta (or "not modified") per
		// path, falling back to full snapshots where our base diverged.
		p.mutateSnap(func(s *snapshot) { s.planeDown = false })
		p.Obs.Add("proxy.plane.heal", 1)
		for path := range p.watched {
			if len(p.byPath[path]) == 0 {
				p.doFetch(ctx, path, true, 0)
			}
		}
	}
}

func (p *Proxy) allObserversDead() bool {
	if len(p.observers) == 0 {
		return true
	}
	for _, o := range p.observers {
		if p.stat(o).consecFail < planeDownAfter {
			return false
		}
	}
	return true
}

// backoff computes the retry delay for the given attempt: exponential from
// backoffBase up to backoffCap, jittered to 50–100% of the step with the
// network's deterministic RNG so runs stay reproducible.
func (p *Proxy) backoff(attempt int) time.Duration {
	d := backoffBase
	for i := 0; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	half := int64(d / 2)
	return time.Duration(half + int64(p.net.RNG().Uint64()%uint64(half)))
}

// hedgeDelay derives the hedged-fetch trigger from the observed p99 fetch
// RTT — hedges fire only for outlier-slow fetches, not the common case.
func (p *Proxy) hedgeDelay() time.Duration {
	if len(p.rtts) == 0 {
		return 4 * hedgeMinDelay
	}
	s := append([]time.Duration(nil), p.rtts...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	p99 := s[len(s)*99/100]
	if p99 < hedgeMinDelay {
		return hedgeMinDelay
	}
	return p99
}

func (p *Proxy) recordRTT(rtt time.Duration) {
	if len(p.rtts) >= rttWindow {
		copy(p.rtts, p.rtts[1:])
		p.rtts = p.rtts[:rttWindow-1]
	}
	p.rtts = append(p.rtts, rtt)
}

// failover replaces the current observer with the healthiest alternative
// (health-scored; deterministic tie-break), or round-robins when the whole
// plane looks dead and scores cannot distinguish candidates. The old
// observer is told to drop our watches so its watch table does not leak
// registrations until its own session sweep fires.
func (p *Proxy) failover(ctx *simnet.Context) {
	if len(p.observers) <= 1 {
		return
	}
	old := p.observer()
	planeDown := p.snap.Load().planeDown
	if planeDown {
		p.current = (p.current + 1) % len(p.observers)
	} else {
		samples := make(map[simnet.NodeID]health.Sample, len(p.observers)-1)
		for _, o := range p.observers {
			if o != old {
				samples[o] = p.sampleOf(o)
			}
		}
		best := health.Rank(samples)[0].ID
		for i, o := range p.observers {
			if o == best {
				p.current = i
			}
		}
	}
	p.Failovers++
	p.pingOutstanding = 0
	p.Obs.Add("proxy.failover", 1)
	for path := range p.watched {
		ctx.Send(old, zeus.MsgUnwatch{Path: path})
	}
	// Re-establish fetches+watches on the new observer, bypassing the
	// single-flight guard (the old observer may never answer). When the
	// plane is down this would be a refetch storm every timeout — the
	// per-path backoff retries own recovery instead.
	if !planeDown {
		for path := range p.watched {
			p.forceFetch(ctx, path, true)
		}
	}
}

// Want asks the proxy to fetch and keep a config warm (with a watch). The
// application's startup request path. Simulation/driver thread only —
// reader goroutines warm paths implicitly through Read's miss set.
func (p *Proxy) Want(path string) {
	snap := p.snap.Load()
	if snap.down {
		return
	}
	path = intern.Path(path)
	ctx := simnet.MakeContext(p.net, p.id)
	p.watched[path] = true
	if _, cached := snap.entries[path]; !cached {
		p.sendFetch(&ctx, path)
	}
}

// noteMiss records a cache miss seen by a reader goroutine; the path is
// Want-ed when the simulation loop next gives the proxy control.
func (p *Proxy) noteMiss(path string) {
	p.missMu.Lock()
	if p.missSet == nil {
		p.missSet = make(map[string]struct{})
	}
	p.missSet[path] = struct{}{}
	p.missMu.Unlock()
	p.missPending.Store(true)
}

// drainMisses turns reader-recorded cache misses into fetches. Runs on the
// simulation thread (message/ping handlers), so worst-case warm-up lag is
// one ping interval.
func (p *Proxy) drainMisses(ctx *simnet.Context) {
	if !p.missPending.Load() {
		return
	}
	p.missMu.Lock()
	set := p.missSet
	p.missSet = nil
	p.missPending.Store(false)
	p.missMu.Unlock()
	snap := p.snap.Load()
	if snap.down {
		return
	}
	for path := range set {
		path = intern.Path(path)
		p.watched[path] = true
		if _, cached := snap.entries[path]; !cached {
			p.sendFetch(ctx, path)
		}
	}
}

// Subscribe registers an application callback for a path and keeps the
// config warm. The callback fires on every subsequent change, forever.
func (p *Proxy) Subscribe(path string, fn UpdateFunc) {
	p.SubscribeWhile(path, nil, fn)
}

// SubscribeWhile registers a callback that lives only while alive()
// returns true (nil = forever). Dead subscriptions are pruned at delivery
// time and across restarts — the cancellation hook the context-aware
// client API builds on.
func (p *Proxy) SubscribeWhile(path string, alive func() bool, fn UpdateFunc) {
	path = intern.Path(path)
	p.subs[path] = append(p.subs[path], subscription{fn: fn, alive: alive})
	p.Want(path)
}

// SubCount reports the live subscriptions for a path (leak tests).
func (p *Proxy) SubCount(path string) int {
	p.pruneSubs(path)
	return len(p.subs[path])
}

// InflightCount reports how many fetches are outstanding (leak checks).
func (p *Proxy) InflightCount() int { return len(p.inflight) }

// pruneSubs drops subscriptions whose liveness check fails.
func (p *Proxy) pruneSubs(path string) {
	subs := p.subs[path]
	kept := subs[:0]
	for _, s := range subs {
		if s.alive != nil && !s.alive() {
			p.Obs.Add("proxy.sub.pruned", 1)
			continue
		}
		kept = append(kept, s)
	}
	if len(kept) == 0 {
		delete(p.subs, path)
	} else {
		p.subs[path] = kept
	}
}

// notify fires the live subscriptions for a path, pruning dead ones.
func (p *Proxy) notify(path string, e Entry) {
	p.pruneSubs(path)
	for _, s := range p.subs[path] {
		s.fn(e)
	}
}

// SetOverride temporarily deploys a config to this server only — the
// canary service's mechanism ("the canary service talks to the proxies …
// to temporarily deploy the new config", §3.3). Subscribers fire as if the
// config changed.
func (p *Proxy) SetOverride(path string, data []byte) {
	path = intern.Path(path)
	e := Entry{Path: path, Exists: true, Data: data, Version: -1,
		Hash: vcs.HashBytes(data), memo: &Memo{}}
	p.mutateSnap(func(s *snapshot) { s.overrides[path] = &entryState{e: e} })
	p.notify(path, e)
}

// ClearOverride removes a temporary deployment; subscribers are re-fed the
// committed value (rollback).
func (p *Proxy) ClearOverride(path string) {
	snap := p.snap.Load()
	if _, ok := snap.overrides[path]; !ok {
		return
	}
	p.mutateSnap(func(s *snapshot) { delete(s.overrides, path) })
	if st, ok := snap.entries[path]; ok {
		p.notify(path, st.e)
	}
}

// CachedPaths lists the paths currently in the in-memory cache or
// overridden (the application-visible config set on this server).
func (p *Proxy) CachedPaths() []string {
	snap := p.snap.Load()
	seen := make(map[string]bool, len(snap.entries)+len(snap.overrides))
	out := make([]string, 0, len(snap.entries)+len(snap.overrides))
	for path := range snap.entries {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for path := range snap.overrides {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}

// Overridden reports whether path currently has a canary override.
func (p *Proxy) Overridden(path string) bool {
	_, ok := p.snap.Load().overrides[path]
	return ok
}

// Read returns the config at path with staleness metadata, degrading
// through the layers: override and memory while the proxy process is up
// (fresh if the plane is healthy, cached if not), then the on-disk cache
// (stale). With StaleServe off, only fresh reads succeed — the paper's
// choice is availability over freshness, so on is the default.
//
// Read is the hot path: one atomic snapshot load plus map lookups, safe
// from any goroutine, and allocation-free when the path is in memory
// (BenchmarkProxyRead asserts 0 allocs/op).
func (p *Proxy) Read(path string) ReadResult {
	snap := p.snap.Load()
	now := p.net.Now()
	if !snap.down {
		if st, ok := snap.overrides[path]; ok {
			return ReadResult{Entry: st.e, Source: SourceFresh, OK: true}
		}
		if st, ok := snap.entries[path]; ok {
			src := SourceFresh
			if snap.planeDown {
				src = SourceCached
			}
			if src != SourceFresh && !p.StaleServe {
				p.Obs.Add("proxy.read.refused", 1)
				return ReadResult{Source: src, Age: now.Sub(st.e.Fetched)}
			}
			if mark := st.readMark.Load(); st.e.Zxid > mark {
				// First application read of this version (CAS so exactly
				// one racing reader records it).
				if st.readMark.CompareAndSwap(mark, st.e.Zxid) {
					p.Obs.PathEvent(path, obs.PropEvent{
						Stage: obs.EvClientRead, Node: string(p.id),
						Zxid: st.e.Zxid, At: now,
					})
				}
			}
			if src != SourceFresh {
				p.Obs.Add("proxy.read.degraded", 1)
			}
			return ReadResult{Entry: st.e, Source: src, Age: now.Sub(st.e.Fetched), OK: true}
		}
		p.noteMiss(path) // warm it for next time
	}
	// Fall back to the on-disk cache (proxy down or not yet fetched).
	e, ok := p.disk.Load(path)
	if !ok {
		return ReadResult{Source: SourceStale}
	}
	if !p.StaleServe {
		p.Obs.Add("proxy.read.refused", 1)
		return ReadResult{Source: SourceStale, Age: now.Sub(e.Fetched)}
	}
	p.Obs.Add("proxy.read.stale", 1)
	return ReadResult{Entry: e, Source: SourceStale, Age: now.Sub(e.Fetched), OK: true}
}

// Get returns the config at path. The second result is false when the
// config is not available from any layer (override, memory, disk).
// Deprecated: use Read, which also reports staleness metadata.
func (p *Proxy) Get(path string) (Entry, bool) {
	r := p.Read(path)
	return r.Entry, r.OK
}

// sendFetch issues a fetch unless one is already in flight for the path
// (single-flight: a second Want before the reply arrives must not send a
// second MsgFetch).
func (p *Proxy) sendFetch(ctx *simnet.Context, path string) {
	if len(p.byPath[path]) > 0 {
		p.Obs.Add("proxy.fetch.singleflight", 1)
		return
	}
	p.doFetch(ctx, path, true, 0)
}

// forceFetch abandons all outstanding fetches for the path and issues a
// new one (failover, or delta fallback with advertise=false to demand a
// full snapshot).
func (p *Proxy) forceFetch(ctx *simnet.Context, path string, advertise bool) {
	p.dropPath(path)
	p.doFetch(ctx, path, advertise, 0)
}

// dropPath forgets every outstanding fetch for a path.
func (p *Proxy) dropPath(path string) {
	for _, id := range p.byPath[path] {
		delete(p.inflight, id)
	}
	delete(p.byPath, path)
}

// dropReq forgets one outstanding fetch.
func (p *Proxy) dropReq(reqID int64) {
	st, ok := p.inflight[reqID]
	if !ok {
		return
	}
	delete(p.inflight, reqID)
	ids := p.byPath[st.path]
	kept := ids[:0]
	for _, id := range ids {
		if id != reqID {
			kept = append(kept, id)
		}
	}
	if len(kept) == 0 {
		delete(p.byPath, st.path)
	} else {
		p.byPath[st.path] = kept
	}
}

// doFetch sends a fetch to the current observer and arms its deadline and
// hedge timers.
func (p *Proxy) doFetch(ctx *simnet.Context, path string, advertise bool, attempt int) {
	p.fetchFrom(ctx, path, p.observer(), advertise, attempt, false)
}

func (p *Proxy) fetchFrom(ctx *simnet.Context, path string, target simnet.NodeID, advertise bool, attempt int, hedge bool) {
	p.nextReq++
	st := fetchState{path: path, observer: target, sentAt: ctx.Now(), attempt: attempt, hedge: hedge}
	if advertise && p.DeltaEncoding {
		if es, ok := p.snap.Load().entries[path]; ok && es.e.Exists {
			st.base, st.haveBase = es.e, true
		} else if e, ok := p.disk.Load(path); ok && e.Exists {
			st.base, st.haveBase = e, true
		}
	}
	p.inflight[p.nextReq] = st
	p.byPath[path] = append(p.byPath[path], p.nextReq)
	p.Fetches++
	p.Obs.Add("proxy.fetch.sent", 1)
	if target == "" {
		return
	}
	m := zeus.MsgFetch{ReqID: p.nextReq, Path: path, Watch: true}
	if st.haveBase {
		m.Have = true
		m.HaveHash = vcs.HashBytes(st.base.Data)
	}
	ctx.Send(target, m)
	ctx.SetTimer(fetchTimeout, msgFetchTimeout{ReqID: p.nextReq})
	if !hedge && len(p.observers) > 1 {
		ctx.SetTimer(p.hedgeDelay(), msgHedgeFire{ReqID: p.nextReq})
	}
}

// HandleMessage implements simnet.Handler.
func (p *Proxy) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	p.drainMisses(ctx)
	switch m := msg.(type) {
	case zeus.MsgFetchReply:
		p.onFetchReply(ctx, from, m)
	case zeus.MsgWatchEvent:
		if from != p.observer() {
			return // stale watch from a previous observer
		}
		p.WatchEvents++
		p.onWatchEvent(ctx, from, m)
	case msgFetchTimeout:
		p.onFetchTimeout(ctx, m)
	case msgHedgeFire:
		p.onHedgeFire(ctx, m)
	case msgRetryFetch:
		if p.watched[m.Path] && len(p.byPath[m.Path]) == 0 {
			p.doFetch(ctx, m.Path, true, m.Attempt)
		}
	case msgTickMonitor:
		p.onTickMonitor(ctx)
	case msgTickPing:
		ctx.SetTimer(pingInterval, msgTickPing{})
		if p.pingOutstanding >= maxPingMisses {
			p.recordFailure(p.observer())
			p.failover(ctx)
		}
		if obs := p.observer(); obs != "" {
			p.pingOutstanding++
			ctx.Send(obs, zeus.MsgPing{})
		}
	case zeus.MsgPong:
		if from == p.observer() {
			p.pingOutstanding = 0
		}
		p.recordSuccess(ctx, from, -1)
	}
}

// onFetchTimeout handles a fetch deadline expiring: mark the observer
// unhealthy, fail over off it if it is still current, and schedule a
// backed-off retry if no sibling fetch (hedge) remains in flight.
func (p *Proxy) onFetchTimeout(ctx *simnet.Context, m msgFetchTimeout) {
	st, ok := p.inflight[m.ReqID]
	if !ok {
		return
	}
	p.dropReq(m.ReqID)
	p.Obs.Add("proxy.fetch.timeout", 1)
	p.recordFailure(st.observer)
	if st.observer == p.observer() {
		p.failover(ctx)
	}
	if p.watched[st.path] && len(p.byPath[st.path]) == 0 {
		attempt := st.attempt + 1
		ctx.SetTimer(p.backoff(attempt), msgRetryFetch{Path: st.path, Attempt: attempt})
		p.Obs.Add("proxy.fetch.retry", 1)
	}
}

// onHedgeFire sends the hedged duplicate of a still-unanswered fetch to
// the next-healthiest observer. First reply wins; the loser is discarded
// by the byPath sweep in onFetchReply.
func (p *Proxy) onHedgeFire(ctx *simnet.Context, m msgHedgeFire) {
	st, ok := p.inflight[m.ReqID]
	if !ok {
		return // answered already — the common case
	}
	samples := make(map[simnet.NodeID]health.Sample, len(p.observers)-1)
	for _, o := range p.observers {
		if o != st.observer {
			samples[o] = p.sampleOf(o)
		}
	}
	if len(samples) == 0 {
		return
	}
	p.Obs.Add("proxy.fetch.hedged", 1)
	p.fetchFrom(ctx, st.path, health.Rank(samples)[0].ID, st.haveBase, st.attempt, true)
}

func (p *Proxy) onFetchReply(ctx *simnet.Context, from simnet.NodeID, m zeus.MsgFetchReply) {
	st, ok := p.inflight[m.ReqID]
	if !ok {
		return
	}
	rtt := ctx.Now().Sub(st.sentAt)
	// First reply wins: discard the sibling (primary or hedge) before the
	// success bookkeeping, so a plane-heal resubscribe sweep sees this
	// path as idle and re-establishes its watch too.
	p.dropPath(st.path)
	// The replying observer holds our watch now (fetches register it); if
	// it is not the observer we point at — a hedge won, or we failed over
	// while the fetch was in flight — re-point at it, else its pushes
	// would be discarded as stale and the path would freeze.
	if from != p.observer() {
		for i, o := range p.observers {
			if o == from {
				p.current = i
				p.pingOutstanding = 0
			}
		}
	}
	p.recordRTT(rtt)
	p.recordSuccess(ctx, from, rtt)
	if st.hedge {
		p.Obs.Add("proxy.fetch.hedge_won", 1)
	}
	if !m.Exists {
		p.apply(ctx, Entry{Path: m.Path, Fetched: ctx.Now()}, from)
		return
	}
	if m.NotModified {
		if !st.haveBase {
			// The observer claims our copy is current but we advertised
			// nothing — protocol confusion; demand the full snapshot.
			p.Obs.Add("proxy.delta.fallback", 1)
			p.forceFetch(ctx, m.Path, false)
			return
		}
		e := st.base
		e.Exists = true
		e.Version, e.Zxid, e.Fetched = m.Version, m.Zxid, ctx.Now()
		p.apply(ctx, e, from)
		return
	}
	data, err := m.Payload.Resolve(st.base.Data)
	if err != nil {
		// Hash miss (e.g. our disk-cache base predates what the observer
		// delta'd against): fall back to a full snapshot.
		p.Obs.Add("proxy.delta.fallback", 1)
		p.forceFetch(ctx, m.Path, false)
		return
	}
	p.apply(ctx, Entry{Path: m.Path, Exists: true, Data: data,
		Version: m.Version, Zxid: m.Zxid, Fetched: ctx.Now()}, from)
}

func (p *Proxy) onWatchEvent(ctx *simnet.Context, from simnet.NodeID, m zeus.MsgWatchEvent) {
	snap := p.snap.Load()
	if old, ok := snap.entries[m.Path]; ok && m.Zxid <= old.e.Zxid {
		return // already current (or newer) — nothing to resolve
	}
	p.recordSuccess(ctx, from, -1)
	if m.Delete {
		p.apply(ctx, Entry{Path: m.Path, Fetched: ctx.Now()}, from)
		return
	}
	var base []byte
	if es, ok := snap.entries[m.Path]; ok && es.e.Exists {
		base = es.e.Data
	}
	data, err := m.Payload.Resolve(base)
	if err != nil {
		// The delta was made against a version we never saw (missed event,
		// restart): recover via full-snapshot fetch.
		p.Obs.Add("proxy.delta.fallback", 1)
		p.forceFetch(ctx, m.Path, false)
		return
	}
	p.apply(ctx, Entry{Path: m.Path, Exists: true, Data: data,
		Version: m.Version, Zxid: m.Zxid, Fetched: ctx.Now()}, from)
}

// apply integrates a new entry if it is not older than what we have. via
// is the observer that delivered it (the upstream hop in the push tree).
func (p *Proxy) apply(ctx *simnet.Context, e Entry, via simnet.NodeID) {
	snap := p.snap.Load()
	old, had := snap.entries[e.Path]
	if had && e.Zxid < old.e.Zxid {
		return
	}
	changed := !had || old.e.Zxid != e.Zxid
	e.Path = intern.Path(e.Path)
	if e.Exists {
		e.Hash = vcs.HashBytes(e.Data)
	}
	st := &entryState{e: e}
	if changed {
		st.e.memo = &Memo{}
	} else {
		// Same version re-confirmed (e.g. a not-modified refresh): keep
		// the decode memo and the first-read mark.
		st.e.memo = old.e.memo
		st.readMark.Store(old.readMark.Load())
	}
	p.mutateSnap(func(s *snapshot) { s.entries[e.Path] = st })
	p.disk.Store(e)
	if changed {
		p.Obs.PathEvent(e.Path, obs.PropEvent{
			Stage: obs.EvProxyMaterialize, Node: string(p.id), Via: string(via),
			Zxid: e.Zxid, At: ctx.Now(),
		})
		p.notify(e.Path, st.e)
	}
}
