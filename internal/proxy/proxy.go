// Package proxy implements the Configerator Proxy that runs on every
// production server (§3.4, bottom of Figure 3).
//
// The proxy randomly picks a Zeus observer in its own cluster, fetches the
// configs the local applications need (it is not a full replica — it only
// caches what is asked for), leaves watches so updates are pushed, and
// stores everything in an on-disk cache. Failure handling follows the
// paper: if the observer fails the proxy connects to another one; if every
// Configerator component fails, applications fall back to reading the
// on-disk cache directly, so a config that was ever fetched remains
// available (stale but usable) no matter what.
package proxy

import (
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/vcs"
	"configerator/internal/zeus"
)

// Entry is one cached config.
type Entry struct {
	Path    string
	Exists  bool
	Data    []byte
	Version int64
	Zxid    int64
	// Fetched is when the proxy last confirmed this entry with an
	// observer (virtual time).
	Fetched time.Time
}

// DiskCache is the on-disk cache shared between the proxy process and the
// client library's failure fallback. It survives proxy crashes.
type DiskCache struct {
	entries map[string]Entry
}

// NewDiskCache returns an empty cache.
func NewDiskCache() *DiskCache {
	return &DiskCache{entries: make(map[string]Entry)}
}

// Store persists an entry. The data is copied: a caller mutating its slice
// afterwards cannot corrupt the cache.
func (d *DiskCache) Store(e Entry) {
	e.Data = append([]byte(nil), e.Data...)
	d.entries[e.Path] = e
}

// Load returns the entry for path. The data is a copy: a subscriber
// mutating the returned bytes cannot corrupt the cache.
func (d *DiskCache) Load(path string) (Entry, bool) {
	e, ok := d.entries[path]
	if ok {
		e.Data = append([]byte(nil), e.Data...)
	}
	return e, ok
}

// Len reports the number of cached configs.
func (d *DiskCache) Len() int { return len(d.entries) }

// UpdateFunc is an application callback fired when a config changes.
type UpdateFunc func(Entry)

const (
	pingInterval  = 2 * time.Second
	fetchTimeout  = 3 * time.Second
	maxPingMisses = 2
)

type msgTickPing struct{}
type msgFetchTimeout struct{ ReqID int64 }

// fetchState is one outstanding fetch: the path, and the base entry whose
// hash we advertised (so a "not modified" or delta reply can be
// materialized against it).
type fetchState struct {
	path     string
	base     Entry
	haveBase bool
}

// Proxy is the per-server config proxy. It is a simnet node; the local
// applications call its methods directly (they share the server).
type Proxy struct {
	id        simnet.NodeID
	net       *simnet.Network
	observers []simnet.NodeID // observers in this cluster
	current   int             // index of the connected observer
	disk      *DiskCache

	cache    map[string]Entry
	override map[string]Entry // canary temporary deployments win over cache
	watched  map[string]bool
	subs     map[string][]UpdateFunc
	inflight map[int64]fetchState // reqID -> outstanding fetch
	byPath   map[string]int64     // path -> outstanding reqID (single-flight)
	nextReq  int64

	pingOutstanding int
	down            bool // proxy process crashed (fallback testing)

	// DeltaEncoding, when true (the default), advertises content hashes on
	// fetches so observers may reply "not modified" or with a delta.
	DeltaEncoding bool

	// Stats.
	Fetches     uint64
	WatchEvents uint64
	Failovers   uint64

	// Obs, when set, receives a materialize event each time the proxy
	// caches a new config version, and a read event the first time the
	// local applications read each version (nil = no instrumentation).
	Obs *obs.Registry
	// readZxid tracks the newest zxid already read per path, so only the
	// first application read of each version is recorded.
	readZxid map[string]int64
}

// New creates a proxy on the network at the placement, connected to the
// given same-cluster observers.
func New(net *simnet.Network, id simnet.NodeID, placement simnet.Placement, observers []simnet.NodeID, disk *DiskCache) *Proxy {
	if disk == nil {
		disk = NewDiskCache()
	}
	p := &Proxy{
		id:            id,
		net:           net,
		observers:     observers,
		disk:          disk,
		cache:         make(map[string]Entry),
		override:      make(map[string]Entry),
		watched:       make(map[string]bool),
		subs:          make(map[string][]UpdateFunc),
		inflight:      make(map[int64]fetchState),
		byPath:        make(map[string]int64),
		readZxid:      make(map[string]int64),
		DeltaEncoding: true,
	}
	if len(observers) > 0 {
		p.current = int(net.RNG().Intn(len(observers)))
	}
	net.AddNode(id, placement, p)
	net.SetTimer(id, pingInterval, msgTickPing{})
	return p
}

// ID returns the proxy's node id.
func (p *Proxy) ID() simnet.NodeID { return p.id }

// Disk exposes the on-disk cache (the client library fallback reads it).
func (p *Proxy) Disk() *DiskCache { return p.disk }

// Crash simulates the proxy process dying. Cached state in memory is lost;
// the disk cache survives.
func (p *Proxy) Crash() {
	p.down = true
	p.net.Fail(p.id)
}

// Restart brings the proxy back with a cold in-memory cache.
func (p *Proxy) Restart() {
	p.down = false
	p.cache = make(map[string]Entry)
	p.override = make(map[string]Entry)
	p.inflight = make(map[int64]fetchState)
	p.byPath = make(map[string]int64)
	p.readZxid = make(map[string]int64)
	p.net.Recover(p.id)
}

// OnRestart implements simnet.Restarter.
func (p *Proxy) OnRestart(ctx *simnet.Context) {
	ctx.SetTimer(pingInterval, msgTickPing{})
	// Re-fetch everything the applications subscribed to. The in-memory
	// cache is cold, so hashes are advertised from the disk cache; a delta
	// that no longer applies falls back to a full snapshot.
	for path := range p.watched {
		p.sendFetch(ctx, path)
	}
}

// Down reports whether the proxy process is crashed.
func (p *Proxy) Down() bool { return p.down }

func (p *Proxy) observer() simnet.NodeID {
	if len(p.observers) == 0 {
		return ""
	}
	return p.observers[p.current%len(p.observers)]
}

// failover rotates to another observer and re-establishes fetches+watches,
// exactly the "if the observer fails, the proxy connects to another
// observer" behaviour. Re-fetches bypass the single-flight guard: the old
// observer may never answer the outstanding requests.
func (p *Proxy) failover(ctx *simnet.Context) {
	if len(p.observers) <= 1 {
		return
	}
	p.current = (p.current + 1 + int(p.net.RNG().Intn(len(p.observers)-1))) % len(p.observers)
	p.Failovers++
	p.pingOutstanding = 0
	for path := range p.watched {
		p.forceFetch(ctx, path, true)
	}
}

// Want asks the proxy to fetch and keep a config warm (with a watch). The
// application's startup request path.
func (p *Proxy) Want(path string) {
	if p.down {
		return
	}
	ctx := simnet.MakeContext(p.net, p.id)
	p.watched[path] = true
	if _, cached := p.cache[path]; !cached {
		p.sendFetch(&ctx, path)
	}
}

// Subscribe registers an application callback for a path and keeps the
// config warm. The callback fires on every subsequent change.
func (p *Proxy) Subscribe(path string, fn UpdateFunc) {
	p.subs[path] = append(p.subs[path], fn)
	p.Want(path)
}

// SetOverride temporarily deploys a config to this server only — the
// canary service's mechanism ("the canary service talks to the proxies …
// to temporarily deploy the new config", §3.3). Subscribers fire as if the
// config changed.
func (p *Proxy) SetOverride(path string, data []byte) {
	e := Entry{Path: path, Exists: true, Data: data, Version: -1}
	p.override[path] = e
	for _, fn := range p.subs[path] {
		fn(e)
	}
}

// ClearOverride removes a temporary deployment; subscribers are re-fed the
// committed value (rollback).
func (p *Proxy) ClearOverride(path string) {
	if _, ok := p.override[path]; !ok {
		return
	}
	delete(p.override, path)
	if e, ok := p.cache[path]; ok {
		for _, fn := range p.subs[path] {
			fn(e)
		}
	}
}

// CachedPaths lists the paths currently in the in-memory cache or
// overridden (the application-visible config set on this server).
func (p *Proxy) CachedPaths() []string {
	seen := make(map[string]bool, len(p.cache)+len(p.override))
	out := make([]string, 0, len(p.cache)+len(p.override))
	for path := range p.cache {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for path := range p.override {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}

// Overridden reports whether path currently has a canary override.
func (p *Proxy) Overridden(path string) bool {
	_, ok := p.override[path]
	return ok
}

// Get returns the config at path. The second result is false when the
// config is not available from any layer (override, memory, disk). A stale
// disk entry is returned when the proxy is down — availability over
// freshness.
func (p *Proxy) Get(path string) (Entry, bool) {
	if e, ok := p.override[path]; ok && !p.down {
		return e, true
	}
	if !p.down {
		if e, ok := p.cache[path]; ok {
			if e.Zxid > p.readZxid[path] {
				p.readZxid[path] = e.Zxid
				p.Obs.PathEvent(path, obs.PropEvent{
					Stage: obs.EvClientRead, Node: string(p.id),
					Zxid: e.Zxid, At: p.net.Now(),
				})
			}
			return e, ok
		}
		p.Want(path) // warm it for next time
	}
	// Fall back to the on-disk cache (proxy down or not yet fetched).
	return p.disk.Load(path)
}

// sendFetch issues a fetch unless one is already in flight for the path
// (single-flight: a second Want before the reply arrives must not send a
// second MsgFetch).
func (p *Proxy) sendFetch(ctx *simnet.Context, path string) {
	if _, ok := p.byPath[path]; ok {
		p.Obs.Add("proxy.fetch.singleflight", 1)
		return
	}
	p.doFetch(ctx, path, true)
}

// forceFetch abandons any outstanding fetch for the path and issues a new
// one (failover, or delta fallback with advertise=false to demand a full
// snapshot).
func (p *Proxy) forceFetch(ctx *simnet.Context, path string, advertise bool) {
	if prev, ok := p.byPath[path]; ok {
		delete(p.inflight, prev)
		delete(p.byPath, path)
	}
	p.doFetch(ctx, path, advertise)
}

func (p *Proxy) doFetch(ctx *simnet.Context, path string, advertise bool) {
	p.nextReq++
	st := fetchState{path: path}
	if advertise && p.DeltaEncoding {
		if e, ok := p.cache[path]; ok && e.Exists {
			st.base, st.haveBase = e, true
		} else if e, ok := p.disk.Load(path); ok && e.Exists {
			st.base, st.haveBase = e, true
		}
	}
	p.inflight[p.nextReq] = st
	p.byPath[path] = p.nextReq
	p.Fetches++
	p.Obs.Add("proxy.fetch.sent", 1)
	obs := p.observer()
	if obs == "" {
		return
	}
	m := zeus.MsgFetch{ReqID: p.nextReq, Path: path, Watch: true}
	if st.haveBase {
		m.Have = true
		m.HaveHash = vcs.HashBytes(st.base.Data)
	}
	ctx.Send(obs, m)
	ctx.SetTimer(fetchTimeout, msgFetchTimeout{ReqID: p.nextReq})
}

// HandleMessage implements simnet.Handler.
func (p *Proxy) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case zeus.MsgFetchReply:
		p.onFetchReply(ctx, from, m)
	case zeus.MsgWatchEvent:
		if from != p.observer() {
			return // stale watch from a previous observer
		}
		p.WatchEvents++
		p.onWatchEvent(ctx, from, m)
	case msgFetchTimeout:
		if st, ok := p.inflight[m.ReqID]; ok {
			delete(p.inflight, m.ReqID)
			delete(p.byPath, st.path)
			p.failover(ctx)
			p.sendFetch(ctx, st.path)
		}
	case msgTickPing:
		ctx.SetTimer(pingInterval, msgTickPing{})
		if p.pingOutstanding >= maxPingMisses {
			p.failover(ctx)
		}
		if obs := p.observer(); obs != "" {
			p.pingOutstanding++
			ctx.Send(obs, zeus.MsgPing{})
		}
	case zeus.MsgPong:
		if from == p.observer() {
			p.pingOutstanding = 0
		}
	}
}

func (p *Proxy) onFetchReply(ctx *simnet.Context, from simnet.NodeID, m zeus.MsgFetchReply) {
	st, ok := p.inflight[m.ReqID]
	if !ok {
		return
	}
	delete(p.inflight, m.ReqID)
	delete(p.byPath, st.path)
	if !m.Exists {
		p.apply(ctx, Entry{Path: m.Path, Fetched: ctx.Now()}, from)
		return
	}
	if m.NotModified {
		if !st.haveBase {
			// The observer claims our copy is current but we advertised
			// nothing — protocol confusion; demand the full snapshot.
			p.Obs.Add("proxy.delta.fallback", 1)
			p.forceFetch(ctx, m.Path, false)
			return
		}
		e := st.base
		e.Exists = true
		e.Version, e.Zxid, e.Fetched = m.Version, m.Zxid, ctx.Now()
		p.apply(ctx, e, from)
		return
	}
	data, err := m.Payload.Resolve(st.base.Data)
	if err != nil {
		// Hash miss (e.g. our disk-cache base predates what the observer
		// delta'd against): fall back to a full snapshot.
		p.Obs.Add("proxy.delta.fallback", 1)
		p.forceFetch(ctx, m.Path, false)
		return
	}
	p.apply(ctx, Entry{Path: m.Path, Exists: true, Data: data,
		Version: m.Version, Zxid: m.Zxid, Fetched: ctx.Now()}, from)
}

func (p *Proxy) onWatchEvent(ctx *simnet.Context, from simnet.NodeID, m zeus.MsgWatchEvent) {
	if old, ok := p.cache[m.Path]; ok && m.Zxid <= old.Zxid {
		return // already current (or newer) — nothing to resolve
	}
	if m.Delete {
		p.apply(ctx, Entry{Path: m.Path, Fetched: ctx.Now()}, from)
		return
	}
	var base []byte
	if e, ok := p.cache[m.Path]; ok && e.Exists {
		base = e.Data
	}
	data, err := m.Payload.Resolve(base)
	if err != nil {
		// The delta was made against a version we never saw (missed event,
		// restart): recover via full-snapshot fetch.
		p.Obs.Add("proxy.delta.fallback", 1)
		p.forceFetch(ctx, m.Path, false)
		return
	}
	p.apply(ctx, Entry{Path: m.Path, Exists: true, Data: data,
		Version: m.Version, Zxid: m.Zxid, Fetched: ctx.Now()}, from)
}

// apply integrates a new entry if it is not older than what we have. via
// is the observer that delivered it (the upstream hop in the push tree).
func (p *Proxy) apply(ctx *simnet.Context, e Entry, via simnet.NodeID) {
	if old, ok := p.cache[e.Path]; ok && e.Zxid < old.Zxid {
		return
	}
	changed := true
	if old, ok := p.cache[e.Path]; ok && old.Zxid == e.Zxid {
		changed = false
	}
	p.cache[e.Path] = e
	p.disk.Store(e)
	if changed {
		p.Obs.PathEvent(e.Path, obs.PropEvent{
			Stage: obs.EvProxyMaterialize, Node: string(p.id), Via: string(via),
			Zxid: e.Zxid, At: ctx.Now(),
		})
		for _, fn := range p.subs[e.Path] {
			fn(e)
		}
	}
}
