package proxy

import (
	"fmt"
	"testing"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/vcs"
	"configerator/internal/zeus"
)

// rig is a small Zeus deployment with two observers in one cluster and a
// proxy, mirroring one production cluster.
type rig struct {
	net    *simnet.Network
	ens    *zeus.Ensemble
	client *zeus.Client
	proxy  *Proxy
}

func newRig(t *testing.T, seed uint64) *rig {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), seed)
	placements := []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
	}
	ens := zeus.StartEnsemble(net, 3, placements)
	ens.AddObserver("obs-1", simnet.Placement{Region: "us", Cluster: "web"})
	ens.AddObserver("obs-2", simnet.Placement{Region: "us", Cluster: "web"})
	cl := zeus.NewClient("tailer", ens.Members)
	net.AddNode("tailer", simnet.Placement{Region: "us", Cluster: "ctrl"}, cl)
	net.RunFor(10 * time.Second)
	if ens.Leader() == "" {
		t.Fatal("no leader")
	}
	px := New(net, "proxy-1", simnet.Placement{Region: "us", Cluster: "web"},
		[]simnet.NodeID{"obs-1", "obs-2"}, nil)
	return &rig{net: net, ens: ens, client: cl, proxy: px}
}

func (r *rig) write(t *testing.T, path, data string) {
	t.Helper()
	done := false
	r.net.After(0, func() {
		ctx := simnet.MakeContext(r.net, "tailer")
		r.client.Write(&ctx, path, []byte(data), func(zeus.WriteResult) { done = true })
	})
	for i := 0; i < 100 && !done; i++ {
		r.net.RunFor(200 * time.Millisecond)
	}
	if !done {
		t.Fatalf("write %s never committed", path)
	}
	r.net.RunFor(5 * time.Second) // let pushes settle
}

func TestProxyFetchesOnDemand(t *testing.T) {
	r := newRig(t, 1)
	r.write(t, "/configs/app", `{"x":1}`)
	r.proxy.Want("/configs/app")
	r.net.RunFor(2 * time.Second)
	e, ok := r.proxy.Get("/configs/app")
	if !ok || !e.Exists || string(e.Data) != `{"x":1}` {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
}

func TestProxyReceivesPushedUpdate(t *testing.T) {
	r := newRig(t, 2)
	r.write(t, "/configs/app", `{"x":1}`)
	var updates []string
	r.proxy.Subscribe("/configs/app", func(e Entry) {
		updates = append(updates, string(e.Data))
	})
	r.net.RunFor(2 * time.Second)
	r.write(t, "/configs/app", `{"x":2}`)
	e, _ := r.proxy.Get("/configs/app")
	if string(e.Data) != `{"x":2}` {
		t.Fatalf("proxy cache = %s", e.Data)
	}
	if len(updates) < 2 || updates[len(updates)-1] != `{"x":2}` {
		t.Fatalf("updates = %v", updates)
	}
}

func TestProxyObserverFailover(t *testing.T) {
	r := newRig(t, 3)
	r.write(t, "/configs/app", `v1`)
	r.proxy.Want("/configs/app")
	r.net.RunFor(2 * time.Second)
	// Kill the connected observer; the proxy must fail over and keep
	// receiving updates via the other observer.
	connected := r.proxy.observer()
	r.net.Fail(connected)
	r.net.RunFor(15 * time.Second)
	if r.proxy.observer() == connected {
		t.Fatal("proxy did not fail over")
	}
	r.write(t, "/configs/app", `v2`)
	e, _ := r.proxy.Get("/configs/app")
	if string(e.Data) != "v2" {
		t.Fatalf("after failover, cache = %s", e.Data)
	}
	if r.proxy.Failovers == 0 {
		t.Error("failover counter not incremented")
	}
}

func TestDiskCacheFallbackWhenProxyDown(t *testing.T) {
	r := newRig(t, 4)
	r.write(t, "/configs/app", `v1`)
	r.proxy.Want("/configs/app")
	r.net.RunFor(2 * time.Second)
	r.proxy.Crash()
	// The application still reads the (stale) config from disk.
	e, ok := r.proxy.Get("/configs/app")
	if !ok || string(e.Data) != "v1" {
		t.Fatalf("disk fallback = %+v, %v", e, ok)
	}
}

func TestProxyRestartRefetches(t *testing.T) {
	r := newRig(t, 5)
	r.write(t, "/configs/app", `v1`)
	r.proxy.Subscribe("/configs/app", func(Entry) {})
	r.net.RunFor(2 * time.Second)
	r.proxy.Crash()
	r.write(t, "/configs/app", `v2`) // changes while proxy is down
	r.proxy.Restart()
	r.net.RunFor(5 * time.Second)
	e, ok := r.proxy.Get("/configs/app")
	if !ok || string(e.Data) != "v2" {
		t.Fatalf("after restart, cache = %+v", e)
	}
}

func TestProxyMissingConfig(t *testing.T) {
	r := newRig(t, 6)
	if _, ok := r.proxy.Get("/configs/never-written"); ok {
		t.Fatal("Get of unknown config reported ok")
	}
	r.net.RunFor(2 * time.Second)
	// It was implicitly Want()ed; still should not exist.
	e, ok := r.proxy.Get("/configs/never-written")
	if ok && e.Exists {
		t.Fatalf("nonexistent config materialized: %+v", e)
	}
}

func TestManyProxiesAllConverge(t *testing.T) {
	r := newRig(t, 7)
	var proxies []*Proxy
	for i := 0; i < 20; i++ {
		px := New(r.net, simnet.NodeID(fmt.Sprintf("proxy-x%d", i)),
			simnet.Placement{Region: "us", Cluster: "web"},
			[]simnet.NodeID{"obs-1", "obs-2"}, nil)
		px.Want("/configs/shared")
		proxies = append(proxies, px)
	}
	r.write(t, "/configs/shared", `final`)
	r.net.RunFor(5 * time.Second)
	for i, px := range proxies {
		e, ok := px.Get("/configs/shared")
		if !ok || string(e.Data) != "final" {
			t.Fatalf("proxy %d: %+v ok=%v", i, e, ok)
		}
	}
}

func TestDiskCache(t *testing.T) {
	d := NewDiskCache()
	d.Store(Entry{Path: "/a", Exists: true, Data: []byte("x"), Version: 1})
	e, ok := d.Load("/a")
	if !ok || string(e.Data) != "x" {
		t.Fatalf("Load = %+v, %v", e, ok)
	}
	if _, ok := d.Load("/missing"); ok {
		t.Fatal("missing path loaded")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

// TestDiskCacheCopies is the aliasing regression test: neither a caller
// mutating the slice it Stored nor a subscriber mutating the slice Load
// returned may corrupt the cached entry.
func TestDiskCacheCopies(t *testing.T) {
	d := NewDiskCache()
	data := []byte("original")
	d.Store(Entry{Path: "/a", Exists: true, Data: data, Version: 1})
	copy(data, "CLOBBER!") // caller reuses its buffer after Store

	e, _ := d.Load("/a")
	if string(e.Data) != "original" {
		t.Fatalf("Store aliased caller buffer: cache = %q", e.Data)
	}
	copy(e.Data, "SCRIBBLE") // subscriber scribbles on what Load returned

	e2, _ := d.Load("/a")
	if string(e2.Data) != "original" {
		t.Fatalf("Load aliased cache buffer: cache = %q", e2.Data)
	}
}

// TestFetchSingleFlight asserts the single-flight guard: two Wants for the
// same path before the reply arrives send exactly one MsgFetch.
func TestFetchSingleFlight(t *testing.T) {
	r := newRig(t, 8)
	reg := obs.New()
	r.proxy.Obs = reg
	r.write(t, "/configs/app", `v1`)

	// Back-to-back, with no network progress in between: the second Want
	// must coalesce onto the outstanding fetch.
	r.proxy.Want("/configs/app")
	r.proxy.Want("/configs/app")
	if sent := reg.Counters().Get("proxy.fetch.sent"); sent != 1 {
		t.Errorf("proxy.fetch.sent = %d, want 1", sent)
	}
	if sf := reg.Counters().Get("proxy.fetch.singleflight"); sf != 1 {
		t.Errorf("proxy.fetch.singleflight = %d, want 1", sf)
	}
	if r.proxy.Fetches != 1 {
		t.Errorf("Fetches = %d, want 1", r.proxy.Fetches)
	}
	r.net.RunFor(2 * time.Second)
	e, ok := r.proxy.Get("/configs/app")
	if !ok || string(e.Data) != "v1" {
		t.Fatalf("after coalesced fetch, Get = %+v, %v", e, ok)
	}
}

// TestProxyRestartMidDeltaFallback restarts a proxy after the config moved
// two versions: the restarted proxy advertises its stale disk-cache hash,
// which matches neither the observer's current content nor its previous
// version, so the observer must serve a full snapshot and the proxy must
// recover the latest value from it.
func TestProxyRestartMidDeltaFallback(t *testing.T) {
	r := newRig(t, 9)
	reg := obs.New()
	r.ens.SetObs(reg)
	r.proxy.Obs = reg
	r.proxy.Subscribe("/configs/app", func(Entry) {})
	r.write(t, "/configs/app", `v1`)
	r.net.RunFor(2 * time.Second)

	r.proxy.Crash()
	// Two versions land while the proxy is down, so the observer's
	// previous-version delta base (v2) doesn't match the proxy's disk
	// cache (v1) either.
	r.write(t, "/configs/app", `v2`)
	r.write(t, "/configs/app", `v3`)
	fullBefore := reg.Counters().Get("zeus.fetch.full")
	r.proxy.Restart()
	r.net.RunFor(5 * time.Second)

	e, ok := r.proxy.Get("/configs/app")
	if !ok || string(e.Data) != "v3" {
		t.Fatalf("after restart, cache = %+v, %v", e, ok)
	}
	if full := reg.Counters().Get("zeus.fetch.full"); full <= fullBefore {
		t.Errorf("zeus.fetch.full = %d (was %d), want a full-snapshot reply", full, fullBefore)
	}
}

// TestWatchDeltaMissFallsBackToFetch injects a watch event whose delta was
// made against a version this proxy never saw; the proxy must not apply
// it, must count a fallback, and must recover via a full fetch.
func TestWatchDeltaMissFallsBackToFetch(t *testing.T) {
	r := newRig(t, 10)
	reg := obs.New()
	r.proxy.Obs = reg
	r.write(t, "/configs/app", `v1`)
	r.proxy.Want("/configs/app")
	r.net.RunFor(2 * time.Second)

	e, _ := r.proxy.Get("/configs/app")
	phantom := []byte("a version this proxy never saw")
	forged := zeus.MsgWatchEvent{Update: zeus.Update{
		Path: "/configs/app", Version: e.Version + 1, Zxid: e.Zxid + 100,
		Payload: zeus.Payload{
			IsDelta:  true,
			Delta:    []byte("garbage"),
			BaseHash: vcs.HashBytes(phantom),
			NewHash:  vcs.HashBytes(phantom),
		},
	}}
	from := r.proxy.observer() // watch events from elsewhere are dropped
	r.net.After(0, func() {
		ctx := simnet.MakeContext(r.net, from)
		ctx.Send("proxy-1", forged)
	})
	r.net.RunFor(5 * time.Second)

	if fb := reg.Counters().Get("proxy.delta.fallback"); fb != 1 {
		t.Errorf("proxy.delta.fallback = %d, want 1", fb)
	}
	got, ok := r.proxy.Get("/configs/app")
	if !ok || string(got.Data) != "v1" {
		t.Fatalf("after bad delta, cache = %+v, %v", got, ok)
	}
}
