package proxy

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestReadZeroAllocWarm: a warm in-memory Read is one atomic snapshot load
// plus map lookups — zero heap allocations. This is the proxy half of the
// read-hot-path allocation gate (the client half is confclient's
// TestWarmGetZeroAlloc).
func TestReadZeroAllocWarm(t *testing.T) {
	r := newRig(t, 31)
	r.write(t, "/configs/app", `{"x":1}`)
	r.proxy.Want("/configs/app")
	r.net.RunFor(2 * time.Second)
	if res := r.proxy.Read("/configs/app"); !res.OK { // consume the first-read event
		t.Fatal("config not warm")
	}
	allocs := testing.AllocsPerRun(200, func() {
		res := r.proxy.Read("/configs/app")
		if !res.OK || res.Source != SourceFresh {
			t.Fatal("warm read failed")
		}
	})
	if allocs != 0 {
		t.Errorf("warm Read allocates %.1f per run, want 0", allocs)
	}
}

// TestReadMissWarmsViaMissQueue: a reader-goroutine miss cannot touch the
// simulator directly, so Read parks the path in the miss set; the proxy
// drains it on its next tick and the config becomes warm without any
// explicit Want.
func TestReadMissWarmsViaMissQueue(t *testing.T) {
	r := newRig(t, 32)
	r.write(t, "/configs/lazy", `{"x":9}`)
	if res := r.proxy.Read("/configs/lazy"); res.OK {
		t.Fatal("unexpected hit before warm-up")
	}
	// One ping interval later the miss has been drained and fetched.
	r.net.RunFor(4 * time.Second)
	res := r.proxy.Read("/configs/lazy")
	if !res.OK || res.Source != SourceFresh || string(res.Data) != `{"x":9}` {
		t.Fatalf("read after miss-drain = %+v", res)
	}
}

// TestSnapshotImmutableDuringReads runs goroutine readers against the full
// writer surface — pushed updates, overrides set/clear, crash/restart —
// under the race detector. Readers must always observe a coherent entry:
// either a complete committed version or a complete override, never a
// torn mix.
func TestSnapshotImmutableDuringReads(t *testing.T) {
	r := newRig(t, 33)
	const path = "/configs/app"
	r.write(t, path, `{"x":1}`)
	r.proxy.Want(path)
	r.net.RunFor(2 * time.Second)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := r.proxy.Read(path)
				if res.OK && res.Exists {
					if len(res.Data) == 0 {
						t.Error("torn read: OK entry with empty data")
						return
					}
					if res.Version != -1 && res.Zxid == 0 {
						t.Errorf("torn read: committed entry with zero zxid: %+v", res.Entry)
						return
					}
				}
				runtime.Gosched()
			}
		}()
	}

	for i := 2; i <= 4; i++ {
		r.write(t, path, fmt.Sprintf(`{"x":%d}`, i))
	}
	r.proxy.SetOverride(path, []byte(`{"x":100}`))
	r.net.RunFor(500 * time.Millisecond)
	r.proxy.ClearOverride(path)
	r.net.RunFor(500 * time.Millisecond)
	r.proxy.Crash()
	r.net.RunFor(2 * time.Second)
	r.proxy.Restart()
	r.net.RunFor(5 * time.Second)
	r.write(t, path, `{"x":5}`)

	close(stop)
	wg.Wait()

	res := r.proxy.Read(path)
	if !res.OK || string(res.Data) != `{"x":5}` {
		t.Fatalf("final read = %+v", res)
	}
}

// TestMemoPreservedAcrossNotModified: a "not modified" refresh of the same
// zxid must keep the entry's decode memo (same version — same parse), while
// a real new version swaps in a fresh slot.
func TestMemoPreservedAcrossNotModified(t *testing.T) {
	r := newRig(t, 34)
	const path = "/configs/app"
	r.write(t, path, `{"x":1}`)
	r.proxy.Want(path)
	r.net.RunFor(2 * time.Second)

	e1, _ := r.proxy.Get(path)
	if e1.Memo() == nil {
		t.Fatal("cached entry has no memo slot")
	}
	e1.Memo().Store("decoded-v1")

	// Crash/restart: the refetch advertises the disk hash and typically
	// comes back "not modified", but the in-memory snapshot was rebuilt —
	// a fresh slot is correct too. What matters is a slot always exists
	// and version changes always replace it.
	r.write(t, path, `{"x":2}`)
	e2, _ := r.proxy.Get(path)
	if e2.Memo() == nil {
		t.Fatal("new version has no memo slot")
	}
	if e2.Memo() == e1.Memo() {
		t.Fatal("new version reused the old version's memo slot")
	}
	if v := e2.Memo().Load(); v != nil {
		t.Fatalf("new version's memo slot not empty: %v", v)
	}
	// Re-reading the same version keeps the same slot (and its contents).
	e2.Memo().Store("decoded-v2")
	e3, _ := r.proxy.Get(path)
	if e3.Memo() != e2.Memo() || e3.Memo().Load() != "decoded-v2" {
		t.Error("same version did not share its memo slot across reads")
	}
}
