// Package review models Phabricator (§3.3): every config change — whether
// authored as code, through the UI, or by a tool — "is treated the same as
// a code change and goes through the same rigorous code review process".
// Sandcastle posts its integration-test results onto the diff for
// reviewers; the diff cannot land until a reviewer other than the author
// accepts it (mandatory diff review, §6.6).
package review

import (
	"errors"
	"fmt"
	"time"
)

// Status is a diff's review state.
type Status int

// Review states.
const (
	StatusPending Status = iota
	StatusApproved
	StatusRejected
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusApproved:
		return "approved"
	case StatusRejected:
		return "rejected"
	}
	return "unknown"
}

// Errors returned by the queue.
var (
	ErrSelfReview = errors.New("review: author cannot review their own diff")
	ErrNotFound   = errors.New("review: no such diff")
	ErrDecided    = errors.New("review: diff already decided")
)

// Diff is one change under review.
type Diff struct {
	ID          int
	Author      string
	Title       string
	Status      Status
	Reviewer    string
	Comments    []string
	TestResults []string // posted by Sandcastle
	Submitted   time.Time
	Decided     time.Time
}

// Queue is the review queue.
type Queue struct {
	diffs  map[int]*Diff
	nextID int
}

// NewQueue returns an empty review queue.
func NewQueue() *Queue {
	return &Queue{diffs: make(map[int]*Diff)}
}

// Submit opens a diff for review.
func (q *Queue) Submit(author, title string, now time.Time) *Diff {
	q.nextID++
	d := &Diff{ID: q.nextID, Author: author, Title: title, Submitted: now}
	q.diffs[d.ID] = d
	return d
}

// Get returns a diff by id.
func (q *Queue) Get(id int) (*Diff, error) {
	d, ok := q.diffs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return d, nil
}

// PostTestResults attaches CI output to the diff ("Sandcastle posts the
// testing results to Phabricator for reviewers to access").
func (q *Queue) PostTestResults(id int, results []string) error {
	d, err := q.Get(id)
	if err != nil {
		return err
	}
	d.TestResults = append(d.TestResults, results...)
	return nil
}

// Comment adds a reviewer comment.
func (q *Queue) Comment(id int, who, text string) error {
	d, err := q.Get(id)
	if err != nil {
		return err
	}
	d.Comments = append(d.Comments, who+": "+text)
	return nil
}

// Approve accepts the diff. Self-review is rejected.
func (q *Queue) Approve(id int, reviewer string, now time.Time) error {
	return q.decide(id, reviewer, StatusApproved, now)
}

// Reject sends the diff back to its author.
func (q *Queue) Reject(id int, reviewer string, now time.Time) error {
	return q.decide(id, reviewer, StatusRejected, now)
}

func (q *Queue) decide(id int, reviewer string, status Status, now time.Time) error {
	d, err := q.Get(id)
	if err != nil {
		return err
	}
	if d.Status != StatusPending {
		return fmt.Errorf("%w: %d is %s", ErrDecided, id, d.Status)
	}
	if reviewer == d.Author {
		return ErrSelfReview
	}
	d.Status = status
	d.Reviewer = reviewer
	d.Decided = now
	return nil
}

// Pending lists undecided diff ids in submission order.
func (q *Queue) Pending() []int {
	var out []int
	for id := 1; id <= q.nextID; id++ {
		if d, ok := q.diffs[id]; ok && d.Status == StatusPending {
			out = append(out, id)
		}
	}
	return out
}
