package review

import (
	"errors"
	"testing"

	"configerator/internal/vclock"
)

var t0 = vclock.Epoch

func TestSubmitApprove(t *testing.T) {
	q := NewQueue()
	d := q.Submit("alice", "raise cache quota", t0)
	if d.Status != StatusPending {
		t.Fatalf("status = %v", d.Status)
	}
	if err := q.Approve(d.ID, "bob", t0); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(d.ID)
	if got.Status != StatusApproved || got.Reviewer != "bob" {
		t.Errorf("diff = %+v", got)
	}
}

func TestSelfReviewRejected(t *testing.T) {
	q := NewQueue()
	d := q.Submit("alice", "x", t0)
	if err := q.Approve(d.ID, "alice", t0); !errors.Is(err, ErrSelfReview) {
		t.Fatalf("err = %v, want ErrSelfReview", err)
	}
}

func TestDoubleDecisionRejected(t *testing.T) {
	q := NewQueue()
	d := q.Submit("alice", "x", t0)
	if err := q.Reject(d.ID, "bob", t0); err != nil {
		t.Fatal(err)
	}
	if err := q.Approve(d.ID, "carol", t0); !errors.Is(err, ErrDecided) {
		t.Fatalf("err = %v, want ErrDecided", err)
	}
}

func TestTestResultsAndComments(t *testing.T) {
	q := NewQueue()
	d := q.Submit("alice", "x", t0)
	if err := q.PostTestResults(d.ID, []string{"PASS site-load", "PASS login"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Comment(d.ID, "bob", "lgtm"); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(d.ID)
	if len(got.TestResults) != 2 || len(got.Comments) != 1 {
		t.Errorf("diff = %+v", got)
	}
}

func TestPendingOrder(t *testing.T) {
	q := NewQueue()
	a := q.Submit("a", "1", t0)
	b := q.Submit("b", "2", t0)
	c := q.Submit("c", "3", t0)
	if err := q.Approve(b.ID, "z", t0); err != nil {
		t.Fatal(err)
	}
	p := q.Pending()
	if len(p) != 2 || p[0] != a.ID || p[1] != c.ID {
		t.Errorf("Pending = %v", p)
	}
}

func TestGetMissing(t *testing.T) {
	q := NewQueue()
	if _, err := q.Get(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatusString(t *testing.T) {
	if StatusPending.String() != "pending" || StatusApproved.String() != "approved" ||
		StatusRejected.String() != "rejected" {
		t.Error("Status.String broken")
	}
}
