// Package riskadvisor implements the paper's proposed future work (§8):
// "flagging high-risk config updates based on historical data. … our data
// show that old configs do get updated … It would be helpful to
// automatically flag high-risk updates based on the past history, e.g., a
// dormant config is suddenly changed in an unusual way", and §6.2's "it
// would be helpful to automatically flag high-risk updates on these
// highly-shared configs" (the 727-author sitevar).
//
// The advisor learns each config's update history as changes land and
// assesses incoming updates against it. Flags are advisory: the pipeline
// posts them onto the review diff for the human reviewer, it does not
// block — consistent with the paper's empower-engineers culture (§6.6).
package riskadvisor

import (
	"fmt"
	"sort"
	"time"
)

// FlagKind classifies a risk signal.
type FlagKind string

// The risk signals.
const (
	// FlagDormantChange: a config untouched for a long time is suddenly
	// being changed.
	FlagDormantChange FlagKind = "dormant-config-changed"
	// FlagUnusualSize: the diff is far larger than this config's
	// historical updates.
	FlagUnusualSize FlagKind = "unusually-large-change"
	// FlagHighlyShared: the config has accumulated many distinct
	// co-authors; a mistake here has broad blast radius.
	FlagHighlyShared FlagKind = "highly-shared-config"
	// FlagNewAuthor: the author has never touched this config before
	// (combined with age, a common incident precursor).
	FlagNewAuthor FlagKind = "first-time-author"
	// FlagRecentAlerts: the fleet-health monitor recently fired SLO
	// alerts naming this path — changing a config that is already
	// implicated in an active or just-resolved incident deserves extra
	// scrutiny.
	FlagRecentAlerts FlagKind = "recent-fleet-alerts"
)

// Flag is one advisory finding.
type Flag struct {
	Kind   FlagKind
	Path   string
	Detail string
}

// String renders the flag as a review comment line.
func (f Flag) String() string {
	return fmt.Sprintf("[risk:%s] %s: %s", f.Kind, f.Path, f.Detail)
}

// Thresholds tune the advisor.
type Thresholds struct {
	// DormancyAge is how long without updates marks a config dormant.
	DormancyAge time.Duration
	// SizeFactor flags an update larger than SizeFactor x the historical
	// median line change (and at least MinLines).
	SizeFactor float64
	MinLines   int
	// SharedAuthors flags configs with at least this many co-authors.
	SharedAuthors int
	// SharedReach flags configs whose static blast radius (downstream
	// artifacts + consumer bindings, fed from the dataflow analysis via
	// SetReach) is at least this large — catching new-but-widely-imported
	// configs that have no author history yet. 0 disables.
	SharedReach int
	// AlertWindow / AlertCount flag updates to a path named in at least
	// AlertCount fleet-health alerts (fed via NoteAlert) within the last
	// AlertWindow. AlertCount 0 disables.
	AlertWindow time.Duration
	AlertCount  int
}

// DefaultThresholds are calibrated against the §6.2 distributions: 35% of
// configs go 300+ days untouched, ~50% of updates are two-line changes,
// and >50-author configs are the 0.2% tail.
func DefaultThresholds() Thresholds {
	return Thresholds{
		DormancyAge:   300 * 24 * time.Hour,
		SizeFactor:    8,
		MinLines:      20,
		SharedAuthors: 20,
		SharedReach:   25,
		AlertWindow:   time.Hour,
		AlertCount:    1,
	}
}

// pathHistory is what the advisor remembers per config.
type pathHistory struct {
	created    time.Time
	lastUpdate time.Time
	updates    int
	authors    map[string]bool
	// perAuthor counts each author's updates; habitual updaters (a
	// config's owning automation, its maintainers) are exempt from the
	// shared-config and new-author signals.
	perAuthor map[string]int
	// lineSizes keeps recent update sizes for the median.
	lineSizes []int
}

// Advisor learns config histories and assesses changes.
type Advisor struct {
	t     Thresholds
	paths map[string]*pathHistory
	// reach holds the latest static blast-radius size per path, fed by
	// the pipeline's dataflow pass — the forward-looking complement to
	// the backward-looking author history.
	reach map[string]int
	// alerts holds recent fleet-health alert instants per path, fed by
	// the monitor's OnAlert hook via NoteAlert.
	alerts map[string][]time.Time
}

// New returns an advisor with the given thresholds.
func New(t Thresholds) *Advisor {
	return &Advisor{t: t, paths: make(map[string]*pathHistory),
		reach: make(map[string]int), alerts: make(map[string][]time.Time)}
}

// SetReach records a config's static blast-radius size (downstream
// artifacts plus consumer bindings). The pipeline refreshes it on every
// change that touches the path.
func (a *Advisor) SetReach(path string, size int) {
	a.reach[path] = size
}

// Reach reports the last recorded static blast-radius size for path.
func (a *Advisor) Reach(path string) int { return a.reach[path] }

// NoteAlert records that a fleet-health alert named this path at the
// given instant — wire the monitor's OnAlert hook here. Only a bounded
// recent history is kept per path.
func (a *Advisor) NoteAlert(path string, at time.Time) {
	ts := append(a.alerts[path], at)
	if len(ts) > 64 {
		ts = ts[len(ts)-64:]
	}
	a.alerts[path] = ts
}

// RecentAlerts counts alerts recorded for path within the trailing
// AlertWindow ending at now.
func (a *Advisor) RecentAlerts(path string, now time.Time) int {
	cutoff := now.Add(-a.t.AlertWindow)
	n := 0
	for _, at := range a.alerts[path] {
		if !at.Before(cutoff) && !at.After(now) {
			n++
		}
	}
	return n
}

// Observe records one landed update (create or modify).
func (a *Advisor) Observe(path, author string, lineChanges int, now time.Time) {
	h, ok := a.paths[path]
	if !ok {
		h = &pathHistory{created: now, lastUpdate: now,
			authors: make(map[string]bool), perAuthor: make(map[string]int)}
		a.paths[path] = h
	}
	h.updates++
	h.lastUpdate = now
	h.authors[author] = true
	h.perAuthor[author]++
	h.lineSizes = append(h.lineSizes, lineChanges)
	if len(h.lineSizes) > 64 {
		h.lineSizes = h.lineSizes[len(h.lineSizes)-64:]
	}
}

// Known reports whether the advisor has history for path.
func (a *Advisor) Known(path string) bool {
	_, ok := a.paths[path]
	return ok
}

// Authors reports the distinct-author count for path.
func (a *Advisor) Authors(path string) int {
	if h, ok := a.paths[path]; ok {
		return len(h.authors)
	}
	return 0
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]int, len(xs))
	copy(cp, xs)
	sort.Ints(cp)
	return cp[len(cp)/2]
}

// Assess evaluates a proposed update against the config's history and its
// static blast radius. A config with neither history nor recorded reach
// yields no flags — there is nothing to deviate from.
func (a *Advisor) Assess(path, author string, lineChanges int, now time.Time) []Flag {
	h := a.paths[path]
	var flags []Flag
	if h != nil {
		if dormant := now.Sub(h.lastUpdate); dormant >= a.t.DormancyAge {
			flags = append(flags, Flag{Kind: FlagDormantChange, Path: path,
				Detail: fmt.Sprintf("untouched for %d days (threshold %d)",
					int(dormant.Hours()/24), int(a.t.DormancyAge.Hours()/24))})
		}
		if med := medianInt(h.lineSizes); med > 0 && lineChanges >= a.t.MinLines &&
			float64(lineChanges) >= a.t.SizeFactor*float64(med) {
			flags = append(flags, Flag{Kind: FlagUnusualSize, Path: path,
				Detail: fmt.Sprintf("%d line changes vs historical median %d", lineChanges, med)})
		}
	}
	// Highly-shared configs are only worth a flag when the update comes
	// from a non-habitual author — the config's owning automation updating
	// its own config thousands of times is business as usual. Sharing is
	// evidenced two ways: many historical co-authors, or a large static
	// blast radius — the latter catches a new-but-widely-imported config
	// long before it accumulates an author history.
	if h == nil || h.perAuthor[author] < 3 {
		switch {
		case h != nil && len(h.authors) >= a.t.SharedAuthors:
			flags = append(flags, Flag{Kind: FlagHighlyShared, Path: path,
				Detail: fmt.Sprintf("%d distinct co-authors and %s is not a regular updater",
					len(h.authors), author)})
		case a.t.SharedReach > 0 && a.reach[path] >= a.t.SharedReach:
			flags = append(flags, Flag{Kind: FlagHighlyShared, Path: path,
				Detail: fmt.Sprintf("statically reaches %d downstream artifacts/consumers (threshold %d) and %s is not a regular updater",
					a.reach[path], a.t.SharedReach, author)})
		}
	}
	if h != nil && !h.authors[author] && h.updates >= 3 {
		flags = append(flags, Flag{Kind: FlagNewAuthor, Path: path,
			Detail: fmt.Sprintf("%s has never updated this config (%d prior updates by others)",
				author, h.updates)})
	}
	if a.t.AlertCount > 0 {
		if n := a.RecentAlerts(path, now); n >= a.t.AlertCount {
			flags = append(flags, Flag{Kind: FlagRecentAlerts, Path: path,
				Detail: fmt.Sprintf("named in %d fleet-health alert(s) in the last %s",
					n, a.t.AlertWindow)})
		}
	}
	return flags
}
