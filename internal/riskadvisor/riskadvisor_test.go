package riskadvisor

import (
	"strings"
	"testing"
	"time"

	"configerator/internal/vclock"
)

var t0 = vclock.Epoch

func day(n int) time.Time { return t0.Add(time.Duration(n) * 24 * time.Hour) }

func hasFlag(flags []Flag, kind FlagKind) bool {
	for _, f := range flags {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

func TestNewConfigNoFlags(t *testing.T) {
	a := New(DefaultThresholds())
	if flags := a.Assess("fresh.json", "alice", 2, t0); flags != nil {
		t.Errorf("flags = %v", flags)
	}
}

func TestDormantChangeFlagged(t *testing.T) {
	a := New(DefaultThresholds())
	a.Observe("old.json", "alice", 2, day(0))
	flags := a.Assess("old.json", "alice", 2, day(400))
	if !hasFlag(flags, FlagDormantChange) {
		t.Errorf("dormant change not flagged: %v", flags)
	}
	// A recently touched config is not dormant.
	a.Observe("old.json", "alice", 2, day(400))
	if flags := a.Assess("old.json", "alice", 2, day(410)); hasFlag(flags, FlagDormantChange) {
		t.Errorf("fresh config flagged dormant: %v", flags)
	}
}

func TestUnusualSizeFlagged(t *testing.T) {
	a := New(DefaultThresholds())
	for i := 0; i < 10; i++ {
		a.Observe("cfg.json", "alice", 2, day(i))
	}
	flags := a.Assess("cfg.json", "alice", 200, day(11))
	if !hasFlag(flags, FlagUnusualSize) {
		t.Errorf("200-line change vs 2-line median not flagged: %v", flags)
	}
	// Normal-sized update is fine.
	if flags := a.Assess("cfg.json", "alice", 3, day(11)); hasFlag(flags, FlagUnusualSize) {
		t.Errorf("normal update flagged: %v", flags)
	}
	// Big changes to configs that always change big are normal.
	b := New(DefaultThresholds())
	for i := 0; i < 10; i++ {
		b.Observe("model.json", "svc:publisher", 500, day(i))
	}
	if flags := b.Assess("model.json", "svc:publisher", 600, day(11)); hasFlag(flags, FlagUnusualSize) {
		t.Errorf("habitually-large config flagged: %v", flags)
	}
}

func TestHighlySharedFlagged(t *testing.T) {
	a := New(DefaultThresholds())
	for i := 0; i < 25; i++ {
		a.Observe("shared.json", "eng"+string(rune('a'+i)), 2, day(i))
	}
	flags := a.Assess("shared.json", "enga", 2, day(30))
	if !hasFlag(flags, FlagHighlyShared) {
		t.Errorf("25-author config not flagged: %v", flags)
	}
	if a.Authors("shared.json") != 25 {
		t.Errorf("Authors = %d", a.Authors("shared.json"))
	}
}

// TestHighReachFlagged: a config with no author history at all is still
// flagged highly-shared when its static blast radius is large — the
// under-flagging gap the dataflow analysis closes.
func TestHighReachFlagged(t *testing.T) {
	a := New(DefaultThresholds())
	a.SetReach("sitevars/new-but-popular.cinc", 40)
	flags := a.Assess("sitevars/new-but-popular.cinc", "mallory", 2, t0)
	if !hasFlag(flags, FlagHighlyShared) {
		t.Errorf("high-reach config with no history not flagged: %v", flags)
	}
	if !strings.Contains(flags[0].Detail, "statically reaches 40") {
		t.Errorf("detail should cite the static reach: %q", flags[0].Detail)
	}
	if a.Reach("sitevars/new-but-popular.cinc") != 40 {
		t.Errorf("Reach = %d", a.Reach("sitevars/new-but-popular.cinc"))
	}

	// Below threshold: still no flags (preserves the nil-for-new-config
	// contract).
	a.SetReach("sitevars/quiet.cinc", 3)
	if flags := a.Assess("sitevars/quiet.cinc", "mallory", 2, t0); flags != nil {
		t.Errorf("low-reach config flagged: %v", flags)
	}
}

// TestHighReachHabitualAuthorExempt: regular updaters of a high-reach
// config are not nagged, mirroring the author-history rule.
func TestHighReachHabitualAuthorExempt(t *testing.T) {
	a := New(DefaultThresholds())
	a.SetReach("lib/core.cinc", 100)
	for i := 0; i < 5; i++ {
		a.Observe("lib/core.cinc", "owner", 2, day(i))
	}
	if flags := a.Assess("lib/core.cinc", "owner", 2, day(6)); hasFlag(flags, FlagHighlyShared) {
		t.Errorf("habitual author flagged on high-reach config: %v", flags)
	}
	// But a drive-by author on the same config is.
	flags := a.Assess("lib/core.cinc", "mallory", 2, day(6))
	if !hasFlag(flags, FlagHighlyShared) {
		t.Errorf("drive-by author on high-reach config not flagged: %v", flags)
	}
}

func TestNewAuthorFlagged(t *testing.T) {
	a := New(DefaultThresholds())
	for i := 0; i < 5; i++ {
		a.Observe("cfg.json", "alice", 2, day(i))
	}
	flags := a.Assess("cfg.json", "mallory", 2, day(6))
	if !hasFlag(flags, FlagNewAuthor) {
		t.Errorf("first-time author not flagged: %v", flags)
	}
	if flags := a.Assess("cfg.json", "alice", 2, day(6)); hasFlag(flags, FlagNewAuthor) {
		t.Errorf("regular author flagged: %v", flags)
	}
	// Too little history: don't flag (everyone is new on a 1-update config).
	b := New(DefaultThresholds())
	b.Observe("young.json", "alice", 2, day(0))
	if flags := b.Assess("young.json", "bob", 2, day(1)); hasFlag(flags, FlagNewAuthor) {
		t.Errorf("new author on young config flagged: %v", flags)
	}
}

func TestFlagString(t *testing.T) {
	f := Flag{Kind: FlagDormantChange, Path: "a.json", Detail: "untouched for 400 days"}
	s := f.String()
	if !strings.Contains(s, "dormant") || !strings.Contains(s, "a.json") {
		t.Errorf("String = %q", s)
	}
}

func TestKnown(t *testing.T) {
	a := New(DefaultThresholds())
	if a.Known("x") {
		t.Error("unknown path reported known")
	}
	a.Observe("x", "a", 1, t0)
	if !a.Known("x") {
		t.Error("observed path not known")
	}
}

func TestLineSizeWindowBounded(t *testing.T) {
	a := New(DefaultThresholds())
	for i := 0; i < 200; i++ {
		a.Observe("cfg.json", "alice", 2, day(i))
	}
	if n := len(a.paths["cfg.json"].lineSizes); n > 64 {
		t.Errorf("lineSizes window = %d, want <= 64", n)
	}
}

func TestRecentAlertsFlagged(t *testing.T) {
	a := New(DefaultThresholds())
	a.Observe("hot.json", "alice", 2, t0)
	a.NoteAlert("hot.json", t0.Add(10*time.Minute))
	now := t0.Add(30 * time.Minute)
	if got := a.RecentAlerts("hot.json", now); got != 1 {
		t.Fatalf("RecentAlerts = %d", got)
	}
	flags := a.Assess("hot.json", "alice", 2, now)
	if !hasFlag(flags, FlagRecentAlerts) {
		t.Errorf("flags = %v, want %s", flags, FlagRecentAlerts)
	}
}

func TestRecentAlertsExpireOutsideWindow(t *testing.T) {
	a := New(DefaultThresholds()) // AlertWindow = 1h
	a.Observe("cool.json", "alice", 2, t0)
	a.NoteAlert("cool.json", t0)
	now := t0.Add(2 * time.Hour)
	if got := a.RecentAlerts("cool.json", now); got != 0 {
		t.Fatalf("RecentAlerts = %d after window", got)
	}
	if flags := a.Assess("cool.json", "alice", 2, now); hasFlag(flags, FlagRecentAlerts) {
		t.Errorf("stale alert still flagged: %v", flags)
	}
}

func TestRecentAlertsThresholdAndDisable(t *testing.T) {
	th := DefaultThresholds()
	th.AlertCount = 3
	a := New(th)
	a.Observe("x.json", "alice", 2, t0)
	for i := 0; i < 2; i++ {
		a.NoteAlert("x.json", t0.Add(time.Duration(i)*time.Minute))
	}
	now := t0.Add(5 * time.Minute)
	if flags := a.Assess("x.json", "alice", 2, now); hasFlag(flags, FlagRecentAlerts) {
		t.Errorf("flagged below threshold: %v", flags)
	}
	a.NoteAlert("x.json", t0.Add(3*time.Minute))
	if flags := a.Assess("x.json", "alice", 2, now); !hasFlag(flags, FlagRecentAlerts) {
		t.Error("not flagged at threshold")
	}

	th.AlertCount = 0
	off := New(th)
	off.NoteAlert("y.json", t0)
	if flags := off.Assess("y.json", "alice", 2, t0); hasFlag(flags, FlagRecentAlerts) {
		t.Errorf("disabled signal fired: %v", flags)
	}
}

func TestNoteAlertHistoryBounded(t *testing.T) {
	a := New(DefaultThresholds())
	for i := 0; i < 200; i++ {
		a.NoteAlert("z.json", t0.Add(time.Duration(i)*time.Second))
	}
	if n := len(a.alerts["z.json"]); n > 64 {
		t.Errorf("alert history = %d, want <= 64", n)
	}
}
