// Infrastructure fault plane: a declarative, scripted schedule of
// infrastructure failures executed on the simulation clock.
//
// The paper's availability story (§4.1) is about what happens when the
// infrastructure — not the configs — breaks: observers die, links
// partition, proxies crash and restart. A FaultPlan scripts exactly those
// events ahead of time, deterministically, and mirrors every event it
// fires into the network's obs registry so an experiment can assert that
// each scripted fault actually happened ("fault.injected" plus one
// "fault.<kind>" counter per event).
package simnet

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FaultKind names a scripted infrastructure fault. The string doubles as
// the obs counter suffix ("fault.<kind>").
type FaultKind string

// The scripted fault kinds.
const (
	FaultCrash           FaultKind = "crash"             // net.Fail(node)
	FaultRestart         FaultKind = "restart"           // net.Recover(node)
	FaultPartition       FaultKind = "partition"         // cut a↔b
	FaultHeal            FaultKind = "heal"              // restore a↔b
	FaultPartitionOneWay FaultKind = "partition_one_way" // cut a→b only
	FaultHealOneWay      FaultKind = "heal_one_way"      // restore a→b
	FaultPartitionGroup  FaultKind = "partition_group"   // cut every A↔B pair
	FaultHealGroup       FaultKind = "heal_group"        // restore every A↔B pair
	FaultLatencySpike    FaultKind = "latency_spike"     // add a→b latency
	FaultLatencyClear    FaultKind = "latency_clear"     // remove a→b latency
	FaultLoss            FaultKind = "loss"              // set a→b drop rate
	FaultCall            FaultKind = "call"              // arbitrary scripted action
)

// FaultEvent is one scripted fault: what happens, to whom, and when
// (offset from the instant the plan is applied).
type FaultEvent struct {
	At   time.Duration
	Kind FaultKind

	Node     NodeID        // crash / restart
	From, To NodeID        // link faults
	NodesA   []NodeID      // group partitions
	NodesB   []NodeID      // group partitions
	Extra    time.Duration // latency spikes
	Rate     float64       // loss
	Label    string        // call label (for logs/assertions)
	Call     func()        // call action
}

// FaultPlan is an ordered schedule of fault events. Build one with
// NewFaultPlan and the With* options, then Apply it to a network; events
// fire on the simulation loop at their offsets.
type FaultPlan struct {
	events  []FaultEvent
	fired   int
	applied bool
}

// PlanOption adds scripted events to a FaultPlan.
type PlanOption func(*FaultPlan)

// NewFaultPlan builds a plan from the given options.
func NewFaultPlan(opts ...PlanOption) *FaultPlan {
	p := &FaultPlan{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// WithEvent appends a raw event (escape hatch for custom schedules).
func WithEvent(ev FaultEvent) PlanOption {
	return func(p *FaultPlan) { p.events = append(p.events, ev) }
}

// WithCrash crashes a node at the offset.
func WithCrash(at time.Duration, node NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultCrash, Node: node})
}

// WithRestart recovers a crashed node at the offset.
func WithRestart(at time.Duration, node NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultRestart, Node: node})
}

// WithPartition cuts the a↔b link (both directions) at the offset.
func WithPartition(at time.Duration, a, b NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultPartition, From: a, To: b})
}

// WithHeal restores the a↔b link at the offset.
func WithHeal(at time.Duration, a, b NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultHeal, From: a, To: b})
}

// WithPartitionOneWay cuts only from→to at the offset.
func WithPartitionOneWay(at time.Duration, from, to NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultPartitionOneWay, From: from, To: to})
}

// WithHealOneWay restores from→to at the offset.
func WithHealOneWay(at time.Duration, from, to NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultHealOneWay, From: from, To: to})
}

// WithPartitionGroup cuts every link between a node in A and a node in B —
// a region or cluster partition scripted as ONE event (one counter tick).
func WithPartitionGroup(at time.Duration, a, b []NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultPartitionGroup, NodesA: a, NodesB: b})
}

// WithHealGroup restores every A↔B link as one event.
func WithHealGroup(at time.Duration, a, b []NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultHealGroup, NodesA: a, NodesB: b})
}

// WithLatencySpike adds extra one-way latency on from→to at the offset.
func WithLatencySpike(at time.Duration, from, to NodeID, extra time.Duration) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultLatencySpike, From: from, To: to, Extra: extra})
}

// WithLatencyClear removes the from→to latency spike at the offset.
func WithLatencyClear(at time.Duration, from, to NodeID) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultLatencyClear, From: from, To: to})
}

// WithLoss sets the from→to drop probability at the offset (0 clears).
func WithLoss(at time.Duration, from, to NodeID, rate float64) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultLoss, From: from, To: to, Rate: rate})
}

// WithCall schedules an arbitrary labeled action — the hook for faults the
// network cannot express itself, e.g. a proxy process crash-restart that
// must also drop the proxy's in-memory state.
func WithCall(at time.Duration, label string, fn func()) PlanOption {
	return WithEvent(FaultEvent{At: at, Kind: FaultCall, Label: label, Call: fn})
}

// Len reports the number of scripted events.
func (p *FaultPlan) Len() int { return len(p.events) }

// Fired reports how many scripted events have executed so far.
func (p *FaultPlan) Fired() int { return p.fired }

// Events returns a copy of the schedule (for reports and assertions).
func (p *FaultPlan) Events() []FaultEvent { return append([]FaultEvent(nil), p.events...) }

// Apply schedules every event on the network's simulation loop, offsets
// measured from now. Each event, when it fires, is mirrored into the
// network's obs registry: "fault.injected" plus "fault.<kind>". A plan can
// be applied only once.
func (p *FaultPlan) Apply(n *Network) {
	if p.applied {
		panic("simnet: FaultPlan applied twice")
	}
	p.applied = true
	for i := range p.events {
		ev := p.events[i]
		n.After(ev.At, func() {
			p.execute(n, ev)
			p.fired++
			if n.obs != nil {
				n.obs.Add("fault.injected", 1)
				n.obs.Add("fault."+string(ev.Kind), 1)
			}
		})
	}
}

// OutageWindow is one [Start, End) interval during which a scripted fault
// held: opened by a breaking event, closed by its matching healing event.
// An unclosed window has Closed == false and End equal to the opening
// offset (the plan never healed it).
type OutageWindow struct {
	Kind   FaultKind // the opening event's kind
	Key    string    // what broke: node, link, group, or call-label prefix
	Start  time.Duration
	End    time.Duration
	Closed bool
}

// outageKey classifies one event as window-opening or window-closing and
// derives the identity key its counterpart must share.
func outageKey(ev FaultEvent) (opens bool, closes bool, key string) {
	switch ev.Kind {
	case FaultCrash:
		return true, false, string(ev.Node)
	case FaultRestart:
		return false, true, string(ev.Node)
	case FaultPartition, FaultHeal:
		// Unordered link: normalize endpoint order.
		a, b := string(ev.From), string(ev.To)
		if a > b {
			a, b = b, a
		}
		return ev.Kind == FaultPartition, ev.Kind == FaultHeal, a + "~" + b
	case FaultPartitionOneWay, FaultHealOneWay:
		return ev.Kind == FaultPartitionOneWay, ev.Kind == FaultHealOneWay,
			string(ev.From) + ">" + string(ev.To)
	case FaultPartitionGroup, FaultHealGroup:
		return ev.Kind == FaultPartitionGroup, ev.Kind == FaultHealGroup,
			groupKey(ev.NodesA, ev.NodesB)
	case FaultLatencySpike, FaultLatencyClear:
		return ev.Kind == FaultLatencySpike, ev.Kind == FaultLatencyClear,
			string(ev.From) + ">" + string(ev.To)
	case FaultLoss:
		// rate > 0 breaks the link, rate == 0 restores it.
		return ev.Rate > 0, ev.Rate == 0, string(ev.From) + ">" + string(ev.To)
	case FaultCall:
		// Convention: scripted calls pair by the label prefix before the
		// last '-'; a suffix of "restart", "heal", "recover", or "clear"
		// closes the window the prefix opened ("proxy0-crash" opens
		// "proxy0", "proxy0-restart" closes it). Labels without '-' are
		// instantaneous and produce no window.
		i := strings.LastIndex(ev.Label, "-")
		if i < 0 {
			return false, false, ""
		}
		switch ev.Label[i+1:] {
		case "restart", "heal", "recover", "clear":
			return false, true, ev.Label[:i]
		default:
			return true, false, ev.Label[:i]
		}
	}
	return false, false, ""
}

func groupKey(a, b []NodeID) string {
	sa := make([]string, len(a))
	for i, n := range a {
		sa[i] = string(n)
	}
	sb := make([]string, len(b))
	for i, n := range b {
		sb[i] = string(n)
	}
	sort.Strings(sa)
	sort.Strings(sb)
	ka, kb := strings.Join(sa, ","), strings.Join(sb, ",")
	if ka > kb {
		ka, kb = kb, ka
	}
	return ka + "~" + kb
}

// OutageWindows derives the outage intervals the schedule implies, pairing
// each breaking event with its matching healing event (crash↔restart by
// node, partition↔heal by endpoints, group partitions by member sets,
// scripted calls by label prefix). Repeated break/heal cycles on the same
// key yield one window per cycle, in schedule order. This is the timeline
// availability experiments assert monitoring alerts against.
func (p *FaultPlan) OutageWindows() []OutageWindow {
	evs := append([]FaultEvent(nil), p.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	var out []OutageWindow
	open := make(map[string][]int) // key -> indices into out, FIFO
	for _, ev := range evs {
		opens, closes, key := outageKey(ev)
		switch {
		case opens:
			open[key] = append(open[key], len(out))
			out = append(out, OutageWindow{
				Kind: ev.Kind, Key: key, Start: ev.At, End: ev.At,
			})
		case closes:
			if q := open[key]; len(q) > 0 {
				i := q[0]
				open[key] = q[1:]
				out[i].End = ev.At
				out[i].Closed = true
			}
		}
	}
	return out
}

func (p *FaultPlan) execute(n *Network, ev FaultEvent) {
	switch ev.Kind {
	case FaultCrash:
		n.Fail(ev.Node)
	case FaultRestart:
		n.Recover(ev.Node)
	case FaultPartition:
		n.Partition(ev.From, ev.To)
	case FaultHeal:
		n.Heal(ev.From, ev.To)
	case FaultPartitionOneWay:
		n.PartitionOneWay(ev.From, ev.To)
	case FaultHealOneWay:
		n.HealOneWay(ev.From, ev.To)
	case FaultPartitionGroup:
		for _, a := range ev.NodesA {
			for _, b := range ev.NodesB {
				n.Partition(a, b)
			}
		}
	case FaultHealGroup:
		for _, a := range ev.NodesA {
			for _, b := range ev.NodesB {
				n.Heal(a, b)
			}
		}
	case FaultLatencySpike:
		n.SetLinkLatency(ev.From, ev.To, ev.Extra)
	case FaultLatencyClear:
		n.SetLinkLatency(ev.From, ev.To, 0)
	case FaultLoss:
		n.SetLossOneWay(ev.From, ev.To, ev.Rate)
	case FaultCall:
		ev.Call()
	default:
		panic(fmt.Sprintf("simnet: unknown fault kind %q", ev.Kind))
	}
}
