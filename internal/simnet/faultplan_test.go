package simnet

import (
	"testing"
	"time"

	"configerator/internal/obs"
)

// echoNode counts the messages it receives.
type echoNode struct{ got int }

func (e *echoNode) HandleMessage(ctx *Context, from NodeID, msg Message) { e.got++ }

func faultRig() (*Network, *obs.Registry, *echoNode, *echoNode) {
	net := New(DefaultLatency(), 7)
	reg := obs.New()
	net.SetObs(reg)
	a, b := &echoNode{}, &echoNode{}
	net.AddNode("a", Placement{Region: "us", Cluster: "c1"}, a)
	net.AddNode("b", Placement{Region: "us", Cluster: "c1"}, b)
	return net, reg, a, b
}

// TestFaultPlanSchedule scripts a partition → heal → crash → restart
// sequence and asserts every event fires at its offset, is mirrored into
// the obs counters, and actually affects delivery.
func TestFaultPlanSchedule(t *testing.T) {
	net, reg, _, b := faultRig()
	called := 0
	plan := NewFaultPlan(
		WithPartition(1*time.Second, "a", "b"),
		WithHeal(3*time.Second, "a", "b"),
		WithCrash(5*time.Second, "b"),
		WithRestart(7*time.Second, "b"),
		WithCall(8*time.Second, "custom", func() { called++ }),
	)
	if plan.Len() != 5 {
		t.Fatalf("Len = %d", plan.Len())
	}
	plan.Apply(net)

	send := func() { net.After(0, func() { net.Send("a", "b", "hi") }) }

	// Before the partition: delivered.
	send()
	net.RunFor(500 * time.Millisecond)
	if b.got != 1 {
		t.Fatalf("pre-partition: got %d", b.got)
	}
	// During the partition: dropped.
	net.RunFor(1 * time.Second) // now t=1.5s
	send()
	net.RunFor(500 * time.Millisecond)
	if b.got != 1 {
		t.Fatalf("during partition: got %d", b.got)
	}
	// After the heal: delivered again.
	net.RunFor(1500 * time.Millisecond) // now t=3.5s
	send()
	net.RunFor(500 * time.Millisecond)
	if b.got != 2 {
		t.Fatalf("after heal: got %d", b.got)
	}
	// While crashed: dropped on arrival.
	net.RunFor(1500 * time.Millisecond) // now t=5.5s
	send()
	net.RunFor(500 * time.Millisecond)
	if b.got != 2 {
		t.Fatalf("while crashed: got %d", b.got)
	}
	// After restart + the scripted call.
	net.RunFor(3 * time.Second) // now t=9s
	send()
	net.RunFor(500 * time.Millisecond)
	if b.got != 3 {
		t.Fatalf("after restart: got %d", b.got)
	}
	if called != 1 {
		t.Fatalf("scripted call fired %d times", called)
	}

	if plan.Fired() != plan.Len() {
		t.Fatalf("fired %d of %d", plan.Fired(), plan.Len())
	}
	c := reg.Counters()
	if got := c.Get("fault.injected"); got != int64(plan.Len()) {
		t.Errorf("fault.injected = %d, want %d", got, plan.Len())
	}
	for _, k := range []string{"fault.partition", "fault.heal", "fault.crash", "fault.restart", "fault.call"} {
		if c.Get(k) != 1 {
			t.Errorf("%s = %d, want 1", k, c.Get(k))
		}
	}
}

// TestDirectedPartitionAndLatency exercises the one-way knobs: a→b cut
// leaves b→a flowing, and a latency spike delays but does not drop.
func TestDirectedPartitionAndLatency(t *testing.T) {
	net, _, a, b := faultRig()
	net.PartitionOneWay("a", "b")
	net.After(0, func() {
		net.Send("a", "b", "x") // severed direction
		net.Send("b", "a", "y") // reverse still flows
	})
	net.RunFor(1 * time.Second)
	if b.got != 0 || a.got != 1 {
		t.Fatalf("one-way partition: a=%d b=%d", a.got, b.got)
	}
	net.HealOneWay("a", "b")
	if net.Partitioned("a", "b") {
		t.Fatal("still partitioned after HealOneWay")
	}

	// Latency spike: same-cluster delivery is sub-millisecond normally;
	// with a 2 s spike the message must not arrive within 1 s but must
	// arrive within 3 s.
	net.SetLinkLatency("a", "b", 2*time.Second)
	net.After(0, func() { net.Send("a", "b", "slow") })
	net.RunFor(1 * time.Second)
	if b.got != 0 {
		t.Fatalf("latency spike did not delay: b=%d", b.got)
	}
	net.RunFor(2 * time.Second)
	if b.got != 1 {
		t.Fatalf("spiked message lost: b=%d", b.got)
	}
	net.SetLinkLatency("a", "b", 0)

	// Directed loss at rate 1.0 drops everything a→b.
	net.SetLossOneWay("a", "b", 1.0)
	net.After(0, func() { net.Send("a", "b", "gone") })
	net.RunFor(1 * time.Second)
	if b.got != 1 {
		t.Fatalf("directed loss leaked: b=%d", b.got)
	}
	net.SetLossOneWay("a", "b", 0)
}

func TestOutageWindows(t *testing.T) {
	p := NewFaultPlan(
		// Crash-restart loop on one node: two windows.
		WithCrash(10*time.Second, "px"),
		WithRestart(12*time.Second, "px"),
		WithCrash(15*time.Second, "px"),
		WithRestart(17*time.Second, "px"),
		// Link partition, endpoints given in opposite orders.
		WithPartition(8*time.Second, "b", "a"),
		WithHeal(30*time.Second, "a", "b"),
		// Group partition healed as a group.
		WithPartitionGroup(5*time.Second, []NodeID{"e1", "e2"}, []NodeID{"w1"}),
		WithHealGroup(25*time.Second, []NodeID{"e2", "e1"}, []NodeID{"w1"}),
		// Scripted calls pair by label prefix before the last '-'.
		WithCall(6*time.Second, "obs0-crash", func() {}),
		WithCall(35*time.Second, "obs0-restart", func() {}),
		// Unpaired crash stays open; label without '-' makes no window.
		WithCrash(40*time.Second, "lost"),
		WithCall(41*time.Second, "checkpoint", func() {}),
	)
	ws := p.OutageWindows()
	if len(ws) != 6 {
		t.Fatalf("windows = %d: %+v", len(ws), ws)
	}
	type want struct {
		key        string
		start, end time.Duration
		closed     bool
	}
	wants := []want{
		{"e1,e2~w1", 5 * time.Second, 25 * time.Second, true},
		{"obs0", 6 * time.Second, 35 * time.Second, true},
		{"a~b", 8 * time.Second, 30 * time.Second, true},
		{"px", 10 * time.Second, 12 * time.Second, true},
		{"px", 15 * time.Second, 17 * time.Second, true},
		{"lost", 40 * time.Second, 40 * time.Second, false},
	}
	for i, w := range wants {
		g := ws[i]
		if g.Key != w.key || g.Start != w.start || g.End != w.end || g.Closed != w.closed {
			t.Errorf("window[%d] = %+v, want %+v", i, g, w)
		}
	}
}
