package simnet

import (
	"testing"
	"time"
)

func TestFIFOPerLinkUnderJitter(t *testing.T) {
	// High jitter would reorder independent messages, but a directed link
	// must stay FIFO (TCP semantics).
	net := New(LatencyModel{SameCluster: time.Millisecond, Jitter: 5.0}, 99)
	var order []int
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
		order = append(order, msg.(int))
	})
	net.AddNode("a", Placement{"us", "c1"}, HandlerFunc(func(*Context, NodeID, Message) {}))
	net.AddNode("b", Placement{"us", "c1"}, h)
	for i := 0; i < 200; i++ {
		net.Send("a", "b", i)
		net.RunFor(10 * time.Microsecond) // interleave sends with partial runs
	}
	net.Run()
	if len(order) != 200 {
		t.Fatalf("delivered %d of 200", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered at %d: %v...", i, order[:i+1])
		}
	}
}
