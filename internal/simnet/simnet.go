// Package simnet is a deterministic discrete-event network simulator.
//
// The paper's distribution stack spans multiple continents: a Zeus ensemble
// with a leader and cross-region followers, per-cluster observers, and a
// proxy on every production server. simnet stands in for that physical
// substrate. Nodes are event-driven state machines; messages are delivered
// in virtual-time order with latencies derived from the placement of the
// two endpoints (same cluster, same region, cross region) and transfer
// times derived from message size and per-node link bandwidth. Failures are
// the norm at this scale, so nodes can crash, restart, and be partitioned.
//
// The simulation is single-threaded and fully deterministic: given the same
// seed and the same sequence of API calls, every run delivers every message
// at the same virtual instant.
package simnet

import (
	"container/heap"
	"fmt"
	"time"

	"configerator/internal/obs"
	"configerator/internal/stats"
	"configerator/internal/vclock"
)

// NodeID identifies a simulated process.
type NodeID string

// Message is an arbitrary payload delivered to a node's handler.
type Message interface{}

// Handler is implemented by every simulated process. HandleMessage is
// invoked for remote messages and for self-scheduled timers (from == the
// node itself).
type Handler interface {
	HandleMessage(ctx *Context, from NodeID, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Context, from NodeID, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(ctx *Context, from NodeID, msg Message) { f(ctx, from, msg) }

// Placement locates a node in the fleet topology. Latency between two nodes
// is a function of how much of the placement they share.
type Placement struct {
	Region  string
	Cluster string
}

// LatencyModel computes one-way network latency between two placements.
type LatencyModel struct {
	SameCluster time.Duration // e.g. intra-cluster hop
	SameRegion  time.Duration // cluster-to-cluster within a region
	CrossRegion time.Duration // intercontinental hop
	Jitter      float64       // fractional uniform jitter, e.g. 0.2
	// SerializePerKB is the CPU cost of encoding + decoding one KB of
	// payload (added to a sized message's delivery latency, on top of link
	// occupancy). It is what makes shipping a full config cost measurably
	// more time than shipping a small delta.
	SerializePerKB time.Duration
}

// DefaultLatency approximates the data-center environment described in the
// paper: sub-millisecond in-cluster hops, a few milliseconds within a
// region, and ~75 ms between continents.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		SameCluster:    500 * time.Microsecond,
		SameRegion:     2 * time.Millisecond,
		CrossRegion:    75 * time.Millisecond,
		Jitter:         0.2,
		SerializePerKB: time.Microsecond,
	}
}

func (m LatencyModel) between(a, b Placement, rng *stats.RNG) time.Duration {
	var base time.Duration
	switch {
	case a.Region == b.Region && a.Cluster == b.Cluster:
		base = m.SameCluster
	case a.Region == b.Region:
		base = m.SameRegion
	default:
		base = m.CrossRegion
	}
	if m.Jitter > 0 {
		base += time.Duration(float64(base) * m.Jitter * rng.Float64())
	}
	return base
}

// node is the internal per-node state.
type node struct {
	id        NodeID
	handler   Handler
	placement Placement
	down      bool

	// Link bandwidth modeling: a transfer occupies the sender's uplink and
	// the receiver's downlink for size/bandwidth seconds.
	upBps      float64
	downBps    float64
	upFreeAt   time.Time
	downFreeAt time.Time

	// Per-node wire accounting (payload bytes).
	bytesOut uint64
	bytesIn  uint64
}

type eventKind int

const (
	evDeliver eventKind = iota
	evTimer
	evCall
)

type event struct {
	at   time.Time
	seq  uint64
	kind eventKind
	from NodeID
	to   NodeID
	msg  Message
	call func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type pair struct{ a, b NodeID }

func orderedPair(a, b NodeID) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// Network is the simulator. It owns the virtual clock; components that need
// the current time share the clock via Clock().
type Network struct {
	clock   *vclock.Virtual
	rng     *stats.RNG
	latency LatencyModel
	nodes   map[NodeID]*node
	queue   eventQueue
	seq     uint64

	partitioned map[pair]bool
	// partitionedDir severs single directions only (asymmetric routing
	// failures); the undirected map above cuts both at once.
	partitionedDir map[pair]bool
	lossRate       map[pair]float64
	lossRateDir    map[pair]float64
	// extraLatency adds a per-directed-link latency penalty (congestion
	// spikes injected by a FaultPlan) on top of the placement-derived base.
	extraLatency map[pair]time.Duration
	// lastArrival enforces FIFO delivery per directed link (TCP
	// semantics): latency jitter never reorders two messages between the
	// same endpoints. Protocols like Zeus's commit stream rely on this.
	lastArrival map[pair]time.Time

	// linkBytes accumulates payload bytes per directed link (from, to).
	linkBytes map[pair]uint64

	// obs, when set, receives per-message byte counters and a payload-size
	// histogram (see SetObs).
	obs *obs.Registry

	// Stats observed by tests and benches.
	Delivered uint64
	Dropped   uint64
	BytesSent uint64
}

// DefaultBandwidth is the per-node NIC bandwidth assumed when none is set
// (10 Gbit/s, typical for the data-center servers in the paper's era).
const DefaultBandwidth = 1.25e9 // bytes/sec

// New returns an empty network with the given latency model and seed.
func New(latency LatencyModel, seed uint64) *Network {
	return &Network{
		clock:          vclock.NewVirtual(),
		rng:            stats.NewRNG(seed),
		latency:        latency,
		nodes:          make(map[NodeID]*node),
		partitioned:    make(map[pair]bool),
		partitionedDir: make(map[pair]bool),
		lossRate:       make(map[pair]float64),
		lossRateDir:    make(map[pair]float64),
		extraLatency:   make(map[pair]time.Duration),
		lastArrival:    make(map[pair]time.Time),
		linkBytes:      make(map[pair]uint64),
	}
}

// SetObs attaches an observability registry: every sized send then feeds
// the "net.bytes" counter, a per-distance-class counter
// ("net.bytes.same_cluster" / "net.bytes.same_region" /
// "net.bytes.cross_region"), and the "net.msg.bytes" payload-size
// histogram (recorded on the 1 byte = 1 ns convention).
func (n *Network) SetObs(r *obs.Registry) { n.obs = r }

// LinkBytes reports payload bytes sent on the directed link from→to.
func (n *Network) LinkBytes(from, to NodeID) uint64 { return n.linkBytes[pair{from, to}] }

// NodeBytesOut reports total payload bytes the node has sent.
func (n *Network) NodeBytesOut(id NodeID) uint64 { return n.mustNode(id).bytesOut }

// NodeBytesIn reports total payload bytes the node has received.
func (n *Network) NodeBytesIn(id NodeID) uint64 { return n.mustNode(id).bytesIn }

// Clock exposes the shared virtual clock.
func (n *Network) Clock() *vclock.Virtual { return n.clock }

// Now reports the current virtual time.
func (n *Network) Now() time.Time { return n.clock.Now() }

// RNG exposes the network's deterministic random stream.
func (n *Network) RNG() *stats.RNG { return n.rng }

// AddNode registers a simulated process. It panics if the id is taken.
func (n *Network) AddNode(id NodeID, p Placement, h Handler) {
	if _, ok := n.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %q", id))
	}
	n.nodes[id] = &node{
		id: id, handler: h, placement: p,
		upBps: DefaultBandwidth, downBps: DefaultBandwidth,
	}
}

// SetBandwidth overrides a node's uplink/downlink bandwidth in bytes/sec.
func (n *Network) SetBandwidth(id NodeID, upBps, downBps float64) {
	nd := n.mustNode(id)
	nd.upBps, nd.downBps = upBps, downBps
}

// Placement reports where a node lives.
func (n *Network) Placement(id NodeID) Placement { return n.mustNode(id).placement }

// NodeIDs returns all registered node ids (order unspecified).
func (n *Network) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	return ids
}

func (n *Network) mustNode(id NodeID) *node {
	nd, ok := n.nodes[id]
	if !ok {
		panic(fmt.Sprintf("simnet: unknown node %q", id))
	}
	return nd
}

// Fail crashes a node: in-flight messages to it are dropped on arrival and
// it stops receiving timers until Recover.
func (n *Network) Fail(id NodeID) { n.mustNode(id).down = true }

// Restarter is implemented by handlers that need to re-arm timers after a
// crash: while a node is down its queued timers are dropped, so a periodic
// chain would otherwise die with it.
type Restarter interface {
	OnRestart(ctx *Context)
}

// Recover restarts a crashed node. If its handler implements Restarter,
// OnRestart is invoked on the simulation loop at the current instant.
func (n *Network) Recover(id NodeID) {
	nd := n.mustNode(id)
	nd.down = false
	if r, ok := nd.handler.(Restarter); ok {
		n.After(0, func() {
			if !nd.down {
				r.OnRestart(&Context{net: n, self: id})
			}
		})
	}
}

// IsDown reports whether the node is currently crashed.
func (n *Network) IsDown(id NodeID) bool { return n.mustNode(id).down }

// Partition severs connectivity between a and b (both directions).
func (n *Network) Partition(a, b NodeID) { n.partitioned[orderedPair(a, b)] = true }

// Heal restores connectivity between a and b.
func (n *Network) Heal(a, b NodeID) { delete(n.partitioned, orderedPair(a, b)) }

// PartitionOneWay severs only the from→to direction (asymmetric routing
// failure); replies still flow. Heal it with HealOneWay.
func (n *Network) PartitionOneWay(from, to NodeID) { n.partitionedDir[pair{from, to}] = true }

// HealOneWay restores the from→to direction.
func (n *Network) HealOneWay(from, to NodeID) { delete(n.partitionedDir, pair{from, to}) }

// Partitioned reports whether from→to traffic is currently severed (by
// either the undirected or the directed map).
func (n *Network) Partitioned(from, to NodeID) bool {
	return n.partitioned[orderedPair(from, to)] || n.partitionedDir[pair{from, to}]
}

// SetLoss sets the probability that a message between a and b is lost.
// Used to model the unreliable mobile push-notification channel (§5).
func (n *Network) SetLoss(a, b NodeID, p float64) { n.lossRate[orderedPair(a, b)] = p }

// SetLossOneWay sets the drop probability for the from→to direction only
// (0 clears it).
func (n *Network) SetLossOneWay(from, to NodeID, p float64) {
	if p <= 0 {
		delete(n.lossRateDir, pair{from, to})
		return
	}
	n.lossRateDir[pair{from, to}] = p
}

// SetLinkLatency adds extra one-way latency on the from→to link — a
// congestion spike. Zero clears the spike.
func (n *Network) SetLinkLatency(from, to NodeID, extra time.Duration) {
	if extra <= 0 {
		delete(n.extraLatency, pair{from, to})
		return
	}
	n.extraLatency[pair{from, to}] = extra
}

// Send schedules delivery of a zero-size control message.
func (n *Network) Send(from, to NodeID, msg Message) { n.SendSized(from, to, msg, 0) }

// SendSized schedules delivery of a message of the given payload size.
// Large payloads occupy the sender's uplink and receiver's downlink, which
// is what makes centralized distribution of GB configs melt down and P2P
// win (§3.5).
func (n *Network) SendSized(from, to NodeID, msg Message, size int) {
	src := n.mustNode(from)
	dst := n.mustNode(to)
	if src.down {
		n.Dropped++
		return
	}
	if n.partitioned[orderedPair(from, to)] || n.partitionedDir[pair{from, to}] {
		n.Dropped++
		return
	}
	if p := n.lossRate[orderedPair(from, to)]; p > 0 && n.rng.Bool(p) {
		n.Dropped++
		return
	}
	if p := n.lossRateDir[pair{from, to}]; p > 0 && n.rng.Bool(p) {
		n.Dropped++
		return
	}
	now := n.clock.Now()
	lat := n.latency.between(src.placement, dst.placement, n.rng)
	lat += n.extraLatency[pair{from, to}]
	depart := now
	arrive := now.Add(lat)
	if size > 0 {
		ser := time.Duration(float64(size) / src.upBps * float64(time.Second))
		if src.upFreeAt.After(depart) {
			depart = src.upFreeAt
		}
		depart = depart.Add(ser)
		src.upFreeAt = depart
		recv := time.Duration(float64(size) / dst.downBps * float64(time.Second))
		arrive = depart.Add(lat)
		if dst.downFreeAt.After(arrive) {
			arrive = dst.downFreeAt
		}
		arrive = arrive.Add(recv)
		dst.downFreeAt = arrive
		// Encode + decode CPU cost: pure latency proportional to payload
		// size (it delays this message but does not occupy the links).
		if n.latency.SerializePerKB > 0 {
			arrive = arrive.Add(time.Duration(float64(n.latency.SerializePerKB) * float64(size) / 1024))
		}
		n.BytesSent += uint64(size)
		n.linkBytes[pair{from, to}] += uint64(size)
		src.bytesOut += uint64(size)
		dst.bytesIn += uint64(size)
		if n.obs != nil {
			n.obs.Add("net.bytes", int64(size))
			n.obs.Add("net.msgs.sized", 1)
			switch {
			case src.placement.Region == dst.placement.Region && src.placement.Cluster == dst.placement.Cluster:
				n.obs.Add("net.bytes.same_cluster", int64(size))
			case src.placement.Region == dst.placement.Region:
				n.obs.Add("net.bytes.same_region", int64(size))
			default:
				n.obs.Add("net.bytes.cross_region", int64(size))
			}
			// Payload-size histogram on the 1 byte = 1 ns convention.
			n.obs.Observe("net.msg.bytes", time.Duration(size))
		}
	}
	link := pair{from, to}
	if last := n.lastArrival[link]; arrive.Before(last) {
		arrive = last
	}
	n.lastArrival[link] = arrive
	n.push(&event{at: arrive, kind: evDeliver, from: from, to: to, msg: msg})
}

// SetTimer schedules msg to be delivered to id after delay, with from == id.
func (n *Network) SetTimer(id NodeID, delay time.Duration, msg Message) {
	n.mustNode(id)
	n.push(&event{at: n.clock.Now().Add(delay), kind: evTimer, from: id, to: id, msg: msg})
}

// After schedules an arbitrary callback on the simulation loop. It is the
// hook used by the driver layers (tailer, canary, workload generators) that
// are not themselves nodes.
func (n *Network) After(delay time.Duration, fn func()) {
	n.push(&event{at: n.clock.Now().Add(delay), kind: evCall, call: fn})
}

func (n *Network) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.queue, e)
}

// Step processes the next event. It reports false when the queue is empty.
func (n *Network) Step() bool {
	if len(n.queue) == 0 {
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	n.clock.AdvanceTo(e.at)
	switch e.kind {
	case evCall:
		e.call()
	default:
		dst := n.nodes[e.to]
		if dst == nil || dst.down {
			n.Dropped++
			return true
		}
		n.Delivered++
		dst.handler.HandleMessage(&Context{net: n, self: e.to}, e.from, e.msg)
	}
	return true
}

// Run processes events until the queue is empty.
func (n *Network) Run() {
	for n.Step() {
	}
}

// RunFor processes events until d of virtual time has elapsed; remaining
// later events stay queued. The clock always ends exactly at start+d.
func (n *Network) RunFor(d time.Duration) {
	n.RunUntil(n.clock.Now().Add(d))
}

// RunUntil processes events up to and including virtual time t.
func (n *Network) RunUntil(t time.Time) {
	for len(n.queue) > 0 && !n.queue[0].at.After(t) {
		n.Step()
	}
	n.clock.AdvanceTo(t)
}

// QueueLen reports the number of pending events (for tests).
func (n *Network) QueueLen() int { return len(n.queue) }

// Context is handed to handlers; it carries the node's own identity and the
// network handle for sending messages and arming timers.
type Context struct {
	net  *Network
	self NodeID
}

// MakeContext builds a Context for driver code (tailers, tests, workload
// generators) that acts on behalf of a registered node from outside a
// handler.
func MakeContext(n *Network, self NodeID) Context {
	n.mustNode(self)
	return Context{net: n, self: self}
}

// Self reports the handling node's id.
func (c *Context) Self() NodeID { return c.self }

// Now reports the current virtual time.
func (c *Context) Now() time.Time { return c.net.Now() }

// Send sends a zero-size control message from this node.
func (c *Context) Send(to NodeID, msg Message) { c.net.Send(c.self, to, msg) }

// SendSized sends a message with a payload size from this node.
func (c *Context) SendSized(to NodeID, msg Message, size int) {
	c.net.SendSized(c.self, to, msg, size)
}

// SetTimer arms a self-timer.
func (c *Context) SetTimer(delay time.Duration, msg Message) {
	c.net.SetTimer(c.self, delay, msg)
}

// RNG exposes the deterministic random stream.
func (c *Context) RNG() *stats.RNG { return c.net.RNG() }

// Network returns the underlying network (for topology queries).
func (c *Context) Network() *Network { return c.net }
