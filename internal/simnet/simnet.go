// Package simnet is a deterministic discrete-event network simulator.
//
// The paper's distribution stack spans multiple continents: a Zeus ensemble
// with a leader and cross-region followers, per-cluster observers, and a
// proxy on every production server. simnet stands in for that physical
// substrate. Nodes are event-driven state machines; messages are delivered
// in virtual-time order with latencies derived from the placement of the
// two endpoints (same cluster, same region, cross region) and transfer
// times derived from message size and per-node link bandwidth. Failures are
// the norm at this scale, so nodes can crash, restart, and be partitioned.
//
// The simulation is single-threaded and fully deterministic: given the same
// seed and the same sequence of API calls, every run delivers every message
// at the same virtual instant.
//
// The core is sized for fleets, not testbeds (DESIGN.md §14): events come
// from a freelist and are scheduled on a hierarchical timer wheel, node ids
// are interned into dense int32 indexes so link state lives in compact-key
// maps, and per-node bandwidth state materializes lazily — a million
// mostly-idle devices cost nothing until first touched.
package simnet

import (
	"fmt"
	"sort"
	"time"

	"configerator/internal/intern"
	"configerator/internal/obs"
	"configerator/internal/stats"
	"configerator/internal/vclock"
)

// NodeID identifies a simulated process.
type NodeID string

// Message is an arbitrary payload delivered to a node's handler.
type Message interface{}

// Handler is implemented by every simulated process. HandleMessage is
// invoked for remote messages and for self-scheduled timers (from == the
// node itself). The Context is only valid for the duration of the call.
type Handler interface {
	HandleMessage(ctx *Context, from NodeID, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Context, from NodeID, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(ctx *Context, from NodeID, msg Message) { f(ctx, from, msg) }

// Placement locates a node in the fleet topology. Latency between two nodes
// is a function of how much of the placement they share.
type Placement struct {
	Region  string
	Cluster string
}

// LatencyModel computes one-way network latency between two placements.
type LatencyModel struct {
	SameCluster time.Duration // e.g. intra-cluster hop
	SameRegion  time.Duration // cluster-to-cluster within a region
	CrossRegion time.Duration // intercontinental hop
	Jitter      float64       // fractional uniform jitter, e.g. 0.2
	// SerializePerKB is the CPU cost of encoding + decoding one KB of
	// payload (added to a sized message's delivery latency, on top of link
	// occupancy). It is what makes shipping a full config cost measurably
	// more time than shipping a small delta.
	SerializePerKB time.Duration
}

// DefaultLatency approximates the data-center environment described in the
// paper: sub-millisecond in-cluster hops, a few milliseconds within a
// region, and ~75 ms between continents.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		SameCluster:    500 * time.Microsecond,
		SameRegion:     2 * time.Millisecond,
		CrossRegion:    75 * time.Millisecond,
		Jitter:         0.2,
		SerializePerKB: time.Microsecond,
	}
}

func (m LatencyModel) between(a, b Placement, rng *stats.RNG) time.Duration {
	var base time.Duration
	switch {
	case a.Region == b.Region && a.Cluster == b.Cluster:
		base = m.SameCluster
	case a.Region == b.Region:
		base = m.SameRegion
	default:
		base = m.CrossRegion
	}
	if m.Jitter > 0 {
		base += time.Duration(float64(base) * m.Jitter * rng.Float64())
	}
	return base
}

// node is the internal per-node state. The table is a dense slice indexed
// by the int32 handed out at AddNode; only identity, handler, and liveness
// live inline — everything a mostly-idle node never touches is behind the
// lazily materialized ext pointer.
type node struct {
	id        NodeID
	handler   Handler
	placement Placement
	down      bool
	ext       *nodeExt
}

// nodeExt is the lazily materialized per-node link state: bandwidth
// modeling (a transfer occupies the sender's uplink and the receiver's
// downlink for size/bandwidth seconds) and wire accounting. A node that
// never sends or receives a sized payload never allocates one.
type nodeExt struct {
	upBps      float64
	downBps    float64
	upFreeAt   int64 // ns since base
	downFreeAt int64
	bytesOut   uint64
	bytesIn    uint64
}

const (
	evDeliver uint8 = iota
	evTimer
	evCall
)

// event is one scheduled delivery, timer, or callback. Events are pooled
// in a freelist (Network.free) and linked through next while sitting in a
// wheel slot; at is virtual nanoseconds since the network's base instant.
type event struct {
	at   int64
	seq  uint64
	next *event
	msg  Message
	call func()
	from int32
	to   int32
	kind uint8
}

// linkKey packs a directed link into one map key — link state becomes a
// compact-key map op instead of hashing two strings.
func linkKey(from, to int32) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// orderedKey packs an undirected pair (smaller index first).
func orderedKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return linkKey(a, b)
}

// Network is the simulator. It owns the virtual clock; components that need
// the current time share the clock via Clock().
type Network struct {
	clock   *vclock.Virtual
	rng     *stats.RNG
	latency LatencyModel
	base    time.Time // event times are int64 ns after this instant

	index map[NodeID]int32
	nodes []node

	wheel eventWheel
	free  *event // event freelist: steady state allocates zero events
	seq   uint64
	sctx  Context // scratch Context reused across deliveries

	partitioned map[uint64]bool
	// partitionedDir severs single directions only (asymmetric routing
	// failures); the undirected map above cuts both at once.
	partitionedDir map[uint64]bool
	lossRate       map[uint64]float64
	lossRateDir    map[uint64]float64
	// extraLatency adds a per-directed-link latency penalty (congestion
	// spikes injected by a FaultPlan) on top of the placement-derived base.
	extraLatency map[uint64]time.Duration
	// lastArrival enforces FIFO delivery per directed link (TCP
	// semantics): latency jitter never reorders two messages between the
	// same endpoints. Protocols like Zeus's commit stream rely on this.
	lastArrival map[uint64]int64

	// linkBytes accumulates payload bytes per directed link (from, to).
	linkBytes map[uint64]uint64

	// obs, when set, receives per-message byte counters and a payload-size
	// histogram (see SetObs).
	obs *obs.Registry

	// Stats observed by tests and benches.
	Delivered uint64
	Dropped   uint64
	BytesSent uint64
	// Events counts processed events of every kind (deliveries, drops,
	// callbacks) — the denominator for events/sec and allocs/event.
	Events uint64
}

// DefaultBandwidth is the per-node NIC bandwidth assumed when none is set
// (10 Gbit/s, typical for the data-center servers in the paper's era).
const DefaultBandwidth = 1.25e9 // bytes/sec

// New returns an empty network with the given latency model and seed.
func New(latency LatencyModel, seed uint64) *Network {
	clock := vclock.NewVirtual()
	n := &Network{
		clock:          clock,
		rng:            stats.NewRNG(seed),
		latency:        latency,
		base:           clock.Now(),
		index:          make(map[NodeID]int32),
		partitioned:    make(map[uint64]bool),
		partitionedDir: make(map[uint64]bool),
		lossRate:       make(map[uint64]float64),
		lossRateDir:    make(map[uint64]float64),
		extraLatency:   make(map[uint64]time.Duration),
		lastArrival:    make(map[uint64]int64),
		linkBytes:      make(map[uint64]uint64),
	}
	n.sctx.net = n
	return n
}

func (n *Network) nowNS() int64 { return int64(n.clock.Now().Sub(n.base)) }

// SetObs attaches an observability registry: every sized send then feeds
// the "net.bytes" counter, a per-distance-class counter
// ("net.bytes.same_cluster" / "net.bytes.same_region" /
// "net.bytes.cross_region"), and the "net.msg.bytes" payload-size
// histogram (recorded on the 1 byte = 1 ns convention). Broadcast waves
// batch the counter updates and record one histogram sample per wave.
func (n *Network) SetObs(r *obs.Registry) { n.obs = r }

// LinkBytes reports payload bytes sent on the directed link from→to.
func (n *Network) LinkBytes(from, to NodeID) uint64 {
	fi, ok1 := n.index[from]
	ti, ok2 := n.index[to]
	if !ok1 || !ok2 {
		return 0
	}
	return n.linkBytes[linkKey(fi, ti)]
}

// NodeBytesOut reports total payload bytes the node has sent.
func (n *Network) NodeBytesOut(id NodeID) uint64 {
	if ext := n.nodes[n.mustIdx(id)].ext; ext != nil {
		return ext.bytesOut
	}
	return 0
}

// NodeBytesIn reports total payload bytes the node has received.
func (n *Network) NodeBytesIn(id NodeID) uint64 {
	if ext := n.nodes[n.mustIdx(id)].ext; ext != nil {
		return ext.bytesIn
	}
	return 0
}

// Clock exposes the shared virtual clock.
func (n *Network) Clock() *vclock.Virtual { return n.clock }

// Now reports the current virtual time.
func (n *Network) Now() time.Time { return n.clock.Now() }

// RNG exposes the network's deterministic random stream.
func (n *Network) RNG() *stats.RNG { return n.rng }

// AddNode registers a simulated process. It panics if the id is taken.
// The id and placement strings are interned: every copy of a node id in
// link maps and messages shares one backing string fleet-wide.
func (n *Network) AddNode(id NodeID, p Placement, h Handler) {
	if _, ok := n.index[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %q", id))
	}
	id = NodeID(intern.Path(string(id)))
	p.Region = intern.Path(p.Region)
	p.Cluster = intern.Path(p.Cluster)
	n.index[id] = int32(len(n.nodes))
	n.nodes = append(n.nodes, node{id: id, handler: h, placement: p})
}

// ext materializes a node's bandwidth/accounting state on first touch.
func (n *Network) ext(i int32) *nodeExt {
	nd := &n.nodes[i]
	if nd.ext == nil {
		nd.ext = &nodeExt{upBps: DefaultBandwidth, downBps: DefaultBandwidth}
	}
	return nd.ext
}

// SetBandwidth overrides a node's uplink/downlink bandwidth in bytes/sec.
func (n *Network) SetBandwidth(id NodeID, upBps, downBps float64) {
	ext := n.ext(n.mustIdx(id))
	ext.upBps, ext.downBps = upBps, downBps
}

// Placement reports where a node lives.
func (n *Network) Placement(id NodeID) Placement { return n.nodes[n.mustIdx(id)].placement }

// NodeIDs returns all registered node ids in sorted order, so fleet setup
// code iterating the result is deterministic (map order once leaked into
// trace identity — the PR 8 bug class).
func (n *Network) NodeIDs() []NodeID {
	ids := make([]NodeID, len(n.nodes))
	for i := range n.nodes {
		ids[i] = n.nodes[i].id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (n *Network) mustIdx(id NodeID) int32 {
	i, ok := n.index[id]
	if !ok {
		panic(fmt.Sprintf("simnet: unknown node %q", id))
	}
	return i
}

// Fail crashes a node: in-flight messages to it are dropped on arrival and
// it stops receiving timers until Recover.
func (n *Network) Fail(id NodeID) { n.nodes[n.mustIdx(id)].down = true }

// Restarter is implemented by handlers that need to re-arm timers after a
// crash: while a node is down its queued timers are dropped, so a periodic
// chain would otherwise die with it.
type Restarter interface {
	OnRestart(ctx *Context)
}

// Recover restarts a crashed node. If its handler implements Restarter,
// OnRestart is invoked on the simulation loop at the current instant.
func (n *Network) Recover(id NodeID) {
	i := n.mustIdx(id)
	nd := &n.nodes[i]
	nd.down = false
	if r, ok := nd.handler.(Restarter); ok {
		n.After(0, func() {
			if nd := &n.nodes[i]; !nd.down {
				ctx := Context{net: n, self: nd.id, idx: i}
				r.OnRestart(&ctx)
			}
		})
	}
}

// IsDown reports whether the node is currently crashed.
func (n *Network) IsDown(id NodeID) bool { return n.nodes[n.mustIdx(id)].down }

// Partition severs connectivity between a and b (both directions).
func (n *Network) Partition(a, b NodeID) {
	n.partitioned[orderedKey(n.mustIdx(a), n.mustIdx(b))] = true
}

// Heal restores connectivity between a and b.
func (n *Network) Heal(a, b NodeID) {
	delete(n.partitioned, orderedKey(n.mustIdx(a), n.mustIdx(b)))
}

// PartitionOneWay severs only the from→to direction (asymmetric routing
// failure); replies still flow. Heal it with HealOneWay.
func (n *Network) PartitionOneWay(from, to NodeID) {
	n.partitionedDir[linkKey(n.mustIdx(from), n.mustIdx(to))] = true
}

// HealOneWay restores the from→to direction.
func (n *Network) HealOneWay(from, to NodeID) {
	delete(n.partitionedDir, linkKey(n.mustIdx(from), n.mustIdx(to)))
}

// Partitioned reports whether from→to traffic is currently severed (by
// either the undirected or the directed map).
func (n *Network) Partitioned(from, to NodeID) bool {
	fi, ti := n.mustIdx(from), n.mustIdx(to)
	return n.partitioned[orderedKey(fi, ti)] || n.partitionedDir[linkKey(fi, ti)]
}

// SetLoss sets the probability that a message between a and b is lost
// (0 clears it). Used to model the unreliable mobile push-notification
// channel (§5).
func (n *Network) SetLoss(a, b NodeID, p float64) {
	k := orderedKey(n.mustIdx(a), n.mustIdx(b))
	if p <= 0 {
		delete(n.lossRate, k)
		return
	}
	n.lossRate[k] = p
}

// SetLossOneWay sets the drop probability for the from→to direction only
// (0 clears it).
func (n *Network) SetLossOneWay(from, to NodeID, p float64) {
	k := linkKey(n.mustIdx(from), n.mustIdx(to))
	if p <= 0 {
		delete(n.lossRateDir, k)
		return
	}
	n.lossRateDir[k] = p
}

// SetLinkLatency adds extra one-way latency on the from→to link — a
// congestion spike. Zero clears the spike.
func (n *Network) SetLinkLatency(from, to NodeID, extra time.Duration) {
	k := linkKey(n.mustIdx(from), n.mustIdx(to))
	if extra <= 0 {
		delete(n.extraLatency, k)
		return
	}
	n.extraLatency[k] = extra
}

// Send schedules delivery of a zero-size control message.
func (n *Network) Send(from, to NodeID, msg Message) { n.SendSized(from, to, msg, 0) }

// SendSized schedules delivery of a message of the given payload size.
// Large payloads occupy the sender's uplink and receiver's downlink, which
// is what makes centralized distribution of GB configs melt down and P2P
// win (§3.5).
func (n *Network) SendSized(from, to NodeID, msg Message, size int) {
	n.sendIdx(n.mustIdx(from), n.mustIdx(to), msg, size)
}

func (n *Network) sendIdx(fi, ti int32, msg Message, size int) {
	src := &n.nodes[fi]
	if src.down {
		n.Dropped++
		return
	}
	if n.partitioned[orderedKey(fi, ti)] || n.partitionedDir[linkKey(fi, ti)] {
		n.Dropped++
		return
	}
	if p := n.lossRate[orderedKey(fi, ti)]; p > 0 && n.rng.Bool(p) {
		n.Dropped++
		return
	}
	if p := n.lossRateDir[linkKey(fi, ti)]; p > 0 && n.rng.Bool(p) {
		n.Dropped++
		return
	}
	dst := &n.nodes[ti]
	now := n.nowNS()
	lat := int64(n.latency.between(src.placement, dst.placement, n.rng))
	lat += int64(n.extraLatency[linkKey(fi, ti)])
	arrive := now + lat
	if size > 0 {
		se, de := n.ext(fi), n.ext(ti)
		depart := now
		if se.upFreeAt > depart {
			depart = se.upFreeAt
		}
		depart += int64(float64(size) / se.upBps * float64(time.Second))
		se.upFreeAt = depart
		arrive = depart + lat
		if de.downFreeAt > arrive {
			arrive = de.downFreeAt
		}
		arrive += int64(float64(size) / de.downBps * float64(time.Second))
		de.downFreeAt = arrive
		// Encode + decode CPU cost: pure latency proportional to payload
		// size (it delays this message but does not occupy the links).
		if n.latency.SerializePerKB > 0 {
			arrive += int64(float64(n.latency.SerializePerKB) * float64(size) / 1024)
		}
		n.BytesSent += uint64(size)
		n.linkBytes[linkKey(fi, ti)] += uint64(size)
		se.bytesOut += uint64(size)
		de.bytesIn += uint64(size)
		if n.obs != nil {
			n.obs.Add("net.bytes", int64(size))
			n.obs.Add("net.msgs.sized", 1)
			n.obs.Add(byteClassCounter(src.placement, dst.placement), int64(size))
			// Payload-size histogram on the 1 byte = 1 ns convention.
			n.obs.Observe("net.msg.bytes", time.Duration(size))
		}
	}
	key := linkKey(fi, ti)
	if last := n.lastArrival[key]; arrive < last {
		arrive = last
	}
	n.lastArrival[key] = arrive
	n.pushEvent(arrive, evDeliver, fi, ti, msg, nil)
}

func byteClassCounter(a, b Placement) string {
	switch {
	case a.Region == b.Region && a.Cluster == b.Cluster:
		return "net.bytes.same_cluster"
	case a.Region == b.Region:
		return "net.bytes.same_region"
	default:
		return "net.bytes.cross_region"
	}
}

// Broadcast schedules delivery of one shared payload from one sender to
// many recipients — a push wave. Unlike a loop of SendSized calls, the
// serialization CPU cost (SerializePerKB) is charged once for the wave
// rather than once per recipient, every recipient shares the same
// immutable msg value, and the obs counters are updated once per wave
// (with one payload-size histogram sample). Bandwidth is still modeled
// per copy: each recipient's bytes occupy the sender's uplink in turn,
// so a wave to 100k nodes still serializes on the sender's NIC.
// Per-recipient partition, loss, and FIFO rules match SendSized; jitter
// draws happen in tos order, so callers must pass a deterministically
// ordered slice.
func (n *Network) Broadcast(from NodeID, tos []NodeID, msg Message, size int) {
	n.broadcastIdx(n.mustIdx(from), tos, msg, size)
}

func (n *Network) broadcastIdx(fi int32, tos []NodeID, msg Message, size int) {
	src := &n.nodes[fi]
	if src.down {
		n.Dropped += uint64(len(tos))
		return
	}
	now := n.nowNS()
	encodeReady := now
	if size > 0 && n.latency.SerializePerKB > 0 {
		encodeReady += int64(float64(n.latency.SerializePerKB) * float64(size) / 1024)
	}
	var se *nodeExt
	if size > 0 {
		se = n.ext(fi)
	}
	var classBytes [3]uint64 // same_cluster, same_region, cross_region
	sent := 0
	for _, to := range tos {
		ti := n.mustIdx(to)
		if n.partitioned[orderedKey(fi, ti)] || n.partitionedDir[linkKey(fi, ti)] {
			n.Dropped++
			continue
		}
		if p := n.lossRate[orderedKey(fi, ti)]; p > 0 && n.rng.Bool(p) {
			n.Dropped++
			continue
		}
		if p := n.lossRateDir[linkKey(fi, ti)]; p > 0 && n.rng.Bool(p) {
			n.Dropped++
			continue
		}
		dst := &n.nodes[ti]
		lat := int64(n.latency.between(src.placement, dst.placement, n.rng))
		lat += int64(n.extraLatency[linkKey(fi, ti)])
		arrive := encodeReady + lat
		if size > 0 {
			de := n.ext(ti)
			depart := encodeReady
			if se.upFreeAt > depart {
				depart = se.upFreeAt
			}
			depart += int64(float64(size) / se.upBps * float64(time.Second))
			se.upFreeAt = depart
			arrive = depart + lat
			if de.downFreeAt > arrive {
				arrive = de.downFreeAt
			}
			arrive += int64(float64(size) / de.downBps * float64(time.Second))
			de.downFreeAt = arrive
			n.BytesSent += uint64(size)
			n.linkBytes[linkKey(fi, ti)] += uint64(size)
			se.bytesOut += uint64(size)
			de.bytesIn += uint64(size)
			switch {
			case src.placement.Region == dst.placement.Region && src.placement.Cluster == dst.placement.Cluster:
				classBytes[0] += uint64(size)
			case src.placement.Region == dst.placement.Region:
				classBytes[1] += uint64(size)
			default:
				classBytes[2] += uint64(size)
			}
		}
		key := linkKey(fi, ti)
		if last := n.lastArrival[key]; arrive < last {
			arrive = last
		}
		n.lastArrival[key] = arrive
		n.pushEvent(arrive, evDeliver, fi, ti, msg, nil)
		sent++
	}
	if n.obs != nil && size > 0 && sent > 0 {
		n.obs.Add("net.bytes", int64(size)*int64(sent))
		n.obs.Add("net.msgs.sized", int64(sent))
		if classBytes[0] > 0 {
			n.obs.Add("net.bytes.same_cluster", int64(classBytes[0]))
		}
		if classBytes[1] > 0 {
			n.obs.Add("net.bytes.same_region", int64(classBytes[1]))
		}
		if classBytes[2] > 0 {
			n.obs.Add("net.bytes.cross_region", int64(classBytes[2]))
		}
		n.obs.Observe("net.msg.bytes", time.Duration(size))
	}
}

// SetTimer schedules msg to be delivered to id after delay, with from == id.
func (n *Network) SetTimer(id NodeID, delay time.Duration, msg Message) {
	i := n.mustIdx(id)
	n.pushEvent(n.nowNS()+int64(delay), evTimer, i, i, msg, nil)
}

// After schedules an arbitrary callback on the simulation loop. It is the
// hook used by the driver layers (tailer, canary, workload generators) that
// are not themselves nodes.
func (n *Network) After(delay time.Duration, fn func()) {
	n.pushEvent(n.nowNS()+int64(delay), evCall, -1, -1, nil, fn)
}

// pushEvent takes an event from the freelist, fills it, and schedules it.
func (n *Network) pushEvent(at int64, kind uint8, from, to int32, msg Message, call func()) {
	e := n.free
	if e == nil {
		e = &event{}
	} else {
		n.free = e.next
		e.next = nil
	}
	e.at, e.seq, e.kind, e.from, e.to, e.msg, e.call = at, n.seq, kind, from, to, msg, call
	n.seq++
	n.wheel.push(e)
}

func (n *Network) releaseEvent(e *event) {
	*e = event{next: n.free}
	n.free = e
}

// Step processes the next event. It reports false when the queue is empty.
func (n *Network) Step() bool {
	e := n.wheel.pop()
	if e == nil {
		return false
	}
	n.clock.AdvanceTo(n.base.Add(time.Duration(e.at)))
	// Copy out and recycle before invoking the handler: anything the
	// handler schedules reuses this event without aliasing it.
	kind, from, to, msg, call := e.kind, e.from, e.to, e.msg, e.call
	n.releaseEvent(e)
	n.Events++
	if kind == evCall {
		call()
		return true
	}
	dst := &n.nodes[to]
	if dst.down {
		n.Dropped++
		return true
	}
	n.Delivered++
	n.sctx.self = dst.id
	n.sctx.idx = to
	dst.handler.HandleMessage(&n.sctx, n.nodes[from].id, msg)
	return true
}

// Run processes events until the queue is empty.
func (n *Network) Run() {
	for n.Step() {
	}
}

// RunFor processes events until d of virtual time has elapsed; remaining
// later events stay queued. The clock always ends exactly at start+d.
func (n *Network) RunFor(d time.Duration) {
	n.RunUntil(n.clock.Now().Add(d))
}

// RunUntil processes events up to and including virtual time t.
func (n *Network) RunUntil(t time.Time) {
	limit := int64(t.Sub(n.base))
	for {
		e := n.wheel.peek()
		if e == nil || e.at > limit {
			break
		}
		n.Step()
	}
	n.clock.AdvanceTo(t)
}

// QueueLen reports the number of pending events (for tests).
func (n *Network) QueueLen() int { return n.wheel.pending }

// Context is handed to handlers; it carries the node's own identity and the
// network handle for sending messages and arming timers. The Context passed
// to HandleMessage is only valid for the duration of the call — handlers
// must not retain it (the simulator reuses one Context across deliveries).
type Context struct {
	net  *Network
	self NodeID
	idx  int32
}

// MakeContext builds a Context for driver code (tailers, tests, workload
// generators) that acts on behalf of a registered node from outside a
// handler.
func MakeContext(n *Network, self NodeID) Context {
	i := n.mustIdx(self)
	return Context{net: n, self: n.nodes[i].id, idx: i}
}

// Self reports the handling node's id.
func (c *Context) Self() NodeID { return c.self }

// Now reports the current virtual time.
func (c *Context) Now() time.Time { return c.net.Now() }

// Send sends a zero-size control message from this node.
func (c *Context) Send(to NodeID, msg Message) {
	c.net.sendIdx(c.idx, c.net.mustIdx(to), msg, 0)
}

// SendSized sends a message with a payload size from this node.
func (c *Context) SendSized(to NodeID, msg Message, size int) {
	c.net.sendIdx(c.idx, c.net.mustIdx(to), msg, size)
}

// Broadcast sends one shared payload to many recipients (see
// Network.Broadcast); tos must be deterministically ordered.
func (c *Context) Broadcast(tos []NodeID, msg Message, size int) {
	c.net.broadcastIdx(c.idx, tos, msg, size)
}

// SetTimer arms a self-timer.
func (c *Context) SetTimer(delay time.Duration, msg Message) {
	c.net.pushEvent(c.net.nowNS()+int64(delay), evTimer, c.idx, c.idx, msg, nil)
}

// RNG exposes the deterministic random stream.
func (c *Context) RNG() *stats.RNG { return c.net.RNG() }

// Network returns the underlying network (for topology queries).
func (c *Context) Network() *Network { return c.net }
