package simnet

import (
	"testing"
	"time"
)

type recorder struct {
	got []Message
	fn  func(ctx *Context, from NodeID, msg Message)
}

func (r *recorder) HandleMessage(ctx *Context, from NodeID, msg Message) {
	r.got = append(r.got, msg)
	if r.fn != nil {
		r.fn(ctx, from, msg)
	}
}

func twoNodeNet() (*Network, *recorder, *recorder) {
	net := New(DefaultLatency(), 1)
	ra, rb := &recorder{}, &recorder{}
	net.AddNode("a", Placement{Region: "us", Cluster: "c1"}, ra)
	net.AddNode("b", Placement{Region: "us", Cluster: "c1"}, rb)
	return net, ra, rb
}

func TestSendDelivers(t *testing.T) {
	net, _, rb := twoNodeNet()
	net.Send("a", "b", "hello")
	net.Run()
	if len(rb.got) != 1 || rb.got[0] != "hello" {
		t.Fatalf("b got %v", rb.got)
	}
	if net.Delivered != 1 {
		t.Errorf("Delivered = %d", net.Delivered)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Cross-region messages take longer than same-cluster ones.
	net := New(LatencyModel{SameCluster: time.Millisecond, SameRegion: 5 * time.Millisecond,
		CrossRegion: 100 * time.Millisecond}, 1)
	var order []string
	mk := func(name string) Handler {
		return HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
			order = append(order, name)
		})
	}
	net.AddNode("src", Placement{"us", "c1"}, mk("src"))
	net.AddNode("near", Placement{"us", "c1"}, mk("near"))
	net.AddNode("mid", Placement{"us", "c2"}, mk("mid"))
	net.AddNode("far", Placement{"eu", "c9"}, mk("far"))
	net.Send("src", "far", 1)
	net.Send("src", "mid", 1)
	net.Send("src", "near", 1)
	net.Run()
	if len(order) != 3 || order[0] != "near" || order[1] != "mid" || order[2] != "far" {
		t.Fatalf("delivery order = %v", order)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Time {
		net := New(DefaultLatency(), 42)
		var times []time.Time
		h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
			times = append(times, ctx.Now())
		})
		net.AddNode("a", Placement{"us", "c1"}, h)
		net.AddNode("b", Placement{"eu", "c2"}, h)
		for i := 0; i < 50; i++ {
			net.Send("a", "b", i)
			net.Send("b", "a", i)
		}
		net.Run()
		return times
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("different event counts: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if !t1[i].Equal(t2[i]) {
			t.Fatalf("event %d at %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestTimer(t *testing.T) {
	net := New(DefaultLatency(), 1)
	var fired time.Time
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
		if from != "a" {
			t.Errorf("timer from = %v, want self", from)
		}
		fired = ctx.Now()
	})
	net.AddNode("a", Placement{"us", "c1"}, h)
	start := net.Now()
	net.SetTimer("a", 3*time.Second, "tick")
	net.Run()
	if fired.Sub(start) != 3*time.Second {
		t.Errorf("timer fired after %v, want 3s", fired.Sub(start))
	}
}

func TestFailDropsMessages(t *testing.T) {
	net, _, rb := twoNodeNet()
	net.Fail("b")
	net.Send("a", "b", "lost")
	net.Run()
	if len(rb.got) != 0 {
		t.Fatalf("down node received %v", rb.got)
	}
	if net.Dropped == 0 {
		t.Error("expected a drop to be counted")
	}
	net.Recover("b")
	net.Send("a", "b", "ok")
	net.Run()
	if len(rb.got) != 1 || rb.got[0] != "ok" {
		t.Fatalf("recovered node got %v", rb.got)
	}
}

func TestDownSenderDrops(t *testing.T) {
	net, _, rb := twoNodeNet()
	net.Fail("a")
	net.Send("a", "b", "x")
	net.Run()
	if len(rb.got) != 0 {
		t.Fatal("message from down sender delivered")
	}
}

func TestInFlightToCrashedNodeDropped(t *testing.T) {
	net, _, rb := twoNodeNet()
	net.Send("a", "b", "x") // in flight
	net.Fail("b")           // crashes before delivery
	net.Run()
	if len(rb.got) != 0 {
		t.Fatalf("crashed node received in-flight message: %v", rb.got)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net, _, rb := twoNodeNet()
	net.Partition("a", "b")
	net.Send("a", "b", "x")
	net.Run()
	if len(rb.got) != 0 {
		t.Fatal("partitioned message delivered")
	}
	net.Heal("a", "b")
	net.Send("a", "b", "y")
	net.Run()
	if len(rb.got) != 1 {
		t.Fatal("healed partition did not deliver")
	}
}

func TestLossRate(t *testing.T) {
	net, _, rb := twoNodeNet()
	net.SetLoss("a", "b", 1.0)
	for i := 0; i < 10; i++ {
		net.Send("a", "b", i)
	}
	net.Run()
	if len(rb.got) != 0 {
		t.Fatalf("lossy link delivered %v", rb.got)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	net := New(LatencyModel{SameCluster: 0}, 1)
	var arrival time.Time
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) { arrival = ctx.Now() })
	net.AddNode("a", Placement{"us", "c1"}, &recorder{})
	net.AddNode("b", Placement{"us", "c1"}, h)
	net.SetBandwidth("a", 1e6, 1e6) // 1 MB/s
	net.SetBandwidth("b", 1e6, 1e6)
	start := net.Now()
	net.SendSized("a", "b", "blob", 1_000_000) // 1 MB -> 1s up + 1s down
	net.Run()
	got := arrival.Sub(start)
	if got < 1900*time.Millisecond || got > 2100*time.Millisecond {
		t.Errorf("1MB over 1MB/s links took %v, want ~2s", got)
	}
}

func TestUplinkSharing(t *testing.T) {
	// Two large sends from the same node must serialize on its uplink.
	net := New(LatencyModel{SameCluster: 0}, 1)
	var arrivals []time.Time
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
		arrivals = append(arrivals, ctx.Now())
	})
	net.AddNode("a", Placement{"us", "c1"}, &recorder{})
	net.AddNode("b", Placement{"us", "c1"}, h)
	net.AddNode("c", Placement{"us", "c1"}, h)
	net.SetBandwidth("a", 1e6, 1e6)
	start := net.Now()
	net.SendSized("a", "b", "x", 1_000_000)
	net.SendSized("a", "c", "y", 1_000_000)
	net.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Second transfer departs only after the first finishes serializing.
	if arrivals[1].Sub(start) < 2*time.Second {
		t.Errorf("second transfer arrived at %v; uplink not shared", arrivals[1].Sub(start))
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	net, _, _ := twoNodeNet()
	start := net.Now()
	net.RunFor(time.Minute)
	if net.Now().Sub(start) != time.Minute {
		t.Errorf("clock advanced %v, want 1m", net.Now().Sub(start))
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	net, _, rb := twoNodeNet()
	net.SetTimer("b", time.Hour, "later")
	net.Send("a", "b", "soon")
	net.RunFor(time.Minute)
	if len(rb.got) != 1 {
		t.Fatalf("got %v, want just the near message", rb.got)
	}
	if net.QueueLen() != 1 {
		t.Fatalf("queue len = %d, want 1", net.QueueLen())
	}
	net.Run()
	if len(rb.got) != 2 {
		t.Fatal("later event never delivered")
	}
}

func TestAfterCallback(t *testing.T) {
	net, _, _ := twoNodeNet()
	fired := false
	net.After(5*time.Second, func() { fired = true })
	net.RunFor(4 * time.Second)
	if fired {
		t.Fatal("callback fired early")
	}
	net.RunFor(2 * time.Second)
	if !fired {
		t.Fatal("callback never fired")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	net, _, _ := twoNodeNet()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.AddNode("a", Placement{}, &recorder{})
}

func TestSendToUnknownPanics(t *testing.T) {
	net, _, _ := twoNodeNet()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Send("a", "nope", 1)
}

func TestFIFOAtSameInstant(t *testing.T) {
	// Events scheduled for the same instant are delivered in send order.
	net := New(LatencyModel{SameCluster: time.Millisecond, Jitter: 0}, 1)
	var order []int
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
		order = append(order, msg.(int))
	})
	net.AddNode("a", Placement{"us", "c1"}, &recorder{})
	net.AddNode("b", Placement{"us", "c1"}, h)
	for i := 0; i < 20; i++ {
		net.Send("a", "b", i)
	}
	net.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}
