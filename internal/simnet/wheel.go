package simnet

import "math/bits"

// The event queue is a two-level hierarchical timer wheel with a far-future
// heap — the classic kernel-timer layout, tuned for this simulator's load
// shape: almost every message lands within a second of virtual now (network
// latencies), periodic timers land within minutes (pings, polls), and only
// stragglers (hour-scale mobile polls, day-scale experiment probes) go
// further out. Scheduling is O(1) for the wheel levels; pop amortizes to
// O(1) plus a small heap on the events of one ~262 µs slot, which is what
// preserves the exact (at, seq) total order the rest of the repo's
// determinism contract is built on.
//
// Layout (times are int64 nanoseconds of virtual time since the network's
// base instant):
//
//	L0: 4096 slots × 2^18 ns (~262 µs)  → spans ~1.07 s
//	L1: 4096 slots × 2^30 ns (~1.07 s)  → spans ~73 min
//	far: binary min-heap for everything beyond the L1 horizon
//
// Invariants:
//   - cur is the absolute L0 slot of the cursor; virtual now never exceeds
//     the slot being drained (the clock only advances via pop).
//   - L0 holds only events in the cursor's own L1 slot, so its occupied
//     positions are a simple ascending range and bucket indexes never alias.
//   - L1 holds events in the 4095 L1 slots after the cursor's.
//   - far events were beyond the L1 horizon when pushed; they may drift into
//     the horizon as the cursor advances, so every window advance compares
//     the far-heap minimum against the next occupied L1 slot.
//   - events whose slot is at or behind the cursor go straight to the due
//     heap (a handler scheduling at "now" lands in the slot being drained).
//
// Per-slot event lists are intrusive (event.next), unordered; order is
// imposed by the due heap when the slot is staged.
const (
	tickShift  = 18                    // ~262 µs per L0 slot
	wheelBits  = 12                    // 4096 slots per level
	wheelSize  = 1 << wheelBits        // slots per level
	wheelMask  = wheelSize - 1         //
	l1Shift    = tickShift + wheelBits // ~1.07 s per L1 slot
	wheelWords = wheelSize / 64        // occupancy bitmap words
)

type eventWheel struct {
	cur     int64 // absolute L0 slot of the cursor
	pending int   // total undelivered events across due/L0/L1/far

	l0     [wheelSize]*event
	l1     [wheelSize]*event
	l0Bits [wheelWords]uint64
	l1Bits [wheelWords]uint64

	due eventHeap // staged events of drained slots, ordered by (at, seq)
	far eventHeap // beyond the L1 horizon, ordered by (at, seq)
}

func (w *eventWheel) push(e *event) {
	w.pending++
	slot := e.at >> tickShift
	if slot <= w.cur {
		w.due.push(e)
		return
	}
	c1 := w.cur >> wheelBits
	s1 := slot >> wheelBits
	switch {
	case s1 == c1:
		i := int(slot & wheelMask)
		e.next = w.l0[i]
		w.l0[i] = e
		w.l0Bits[i>>6] |= 1 << uint(i&63)
	case s1-c1 < wheelSize:
		i := int(s1 & wheelMask)
		e.next = w.l1[i]
		w.l1[i] = e
		w.l1Bits[i>>6] |= 1 << uint(i&63)
	default:
		w.far.push(e)
	}
}

// stage makes the due heap non-empty (or reports that nothing is pending):
// it advances the cursor to the next occupied slot, cascading L1 slots and
// far-heap arrivals into L0 as the window moves.
func (w *eventWheel) stage() bool {
	for len(w.due) == 0 {
		if w.pending == 0 {
			return false
		}
		if p, ok := scanFrom(&w.l0Bits, int(w.cur&wheelMask)); ok {
			w.cur = w.cur&^int64(wheelMask) | int64(p)
			e := w.l0[p]
			w.l0[p] = nil
			w.l0Bits[p>>6] &^= 1 << uint(p&63)
			for e != nil {
				nx := e.next
				e.next = nil
				w.due.push(e)
				e = nx
			}
			continue
		}
		w.advanceWindow()
	}
	return true
}

// advanceWindow moves the cursor to the start of the next L1 slot holding
// events — the earlier of the next occupied L1 bucket and the far-heap
// minimum — and scatters that slot's events into L0.
func (w *eventWheel) advanceWindow() {
	const maxInt64 = int64(^uint64(0) >> 1)
	c1 := w.cur >> wheelBits
	base := int(c1 & wheelMask)
	next1 := maxInt64
	if p, ok := scanCircular(&w.l1Bits, (base+1)&wheelMask); ok {
		next1 = c1 + int64((p-base+wheelSize)&wheelMask)
	}
	farS1 := maxInt64
	if len(w.far) > 0 {
		farS1 = w.far[0].at >> l1Shift
	}
	target := next1
	if farS1 < target {
		target = farS1
	}
	if target == maxInt64 {
		panic("simnet: event wheel has pending events but no occupied slot")
	}
	w.cur = target << wheelBits
	if target == next1 {
		i := int(target & wheelMask)
		e := w.l1[i]
		w.l1[i] = nil
		w.l1Bits[i>>6] &^= 1 << uint(i&63)
		for e != nil {
			nx := e.next
			w.placeL0(e)
			e = nx
		}
	}
	for len(w.far) > 0 && w.far[0].at>>l1Shift == target {
		w.placeL0(w.far.pop())
	}
}

func (w *eventWheel) placeL0(e *event) {
	i := int((e.at >> tickShift) & wheelMask)
	e.next = w.l0[i]
	w.l0[i] = e
	w.l0Bits[i>>6] |= 1 << uint(i&63)
}

func (w *eventWheel) pop() *event {
	if !w.stage() {
		return nil
	}
	w.pending--
	return w.due.pop()
}

func (w *eventWheel) peek() *event {
	if !w.stage() {
		return nil
	}
	return w.due[0]
}

// scanFrom returns the position of the first set bit at or after start.
func scanFrom(b *[wheelWords]uint64, start int) (int, bool) {
	wi := start >> 6
	if word := b[wi] &^ (1<<uint(start&63) - 1); word != 0 {
		return wi<<6 + bits.TrailingZeros64(word), true
	}
	for i := wi + 1; i < wheelWords; i++ {
		if b[i] != 0 {
			return i<<6 + bits.TrailingZeros64(b[i]), true
		}
	}
	return 0, false
}

// scanCircular scans from start to the end of the bitmap, then wraps to the
// beginning — circular order corresponds to ascending distance from start.
func scanCircular(b *[wheelWords]uint64, start int) (int, bool) {
	if p, ok := scanFrom(b, start); ok {
		return p, true
	}
	return scanFrom(b, 0)
}

// eventHeap is a binary min-heap of events ordered by (at, seq) — the same
// total order the old container/heap queue imposed, which is what makes the
// wheel's delivery schedule bit-identical to the reference heap's.
type eventHeap []*event

func eventLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (h *eventHeap) push(e *event) {
	q := append(*h, e)
	*h = q
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	q = q[:last]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= len(q) {
			break
		}
		m := l
		if r := l + 1; r < len(q) && eventLess(q[r], q[l]) {
			m = r
		}
		if !eventLess(q[m], q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}
