package simnet

import (
	"container/heap"
	"fmt"
	"testing"
	"time"

	"configerator/internal/stats"
)

// refQueue is the old container/heap event queue, kept here as the
// reference ordering the timer wheel must reproduce exactly.
type refQueue []*event

func (q refQueue) Len() int            { return len(q) }
func (q refQueue) Less(i, j int) bool  { return eventLess(q[i], q[j]) }
func (q refQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *refQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// TestWheelHeapEquivalence drives the wheel and the reference heap through
// an identical randomized push/pop schedule shaped like a 1k-node fleet
// workload — bursts of same-instant events, sub-millisecond network
// arrivals, second-scale timers that land on the L1 wheel, and hour/day
// stragglers that start on the far heap — and asserts every pop agrees on
// (at, seq). This is the determinism contract: the wheel is a drop-in
// replacement for the heap's total order.
func TestWheelHeapEquivalence(t *testing.T) {
	rng := stats.NewRNG(20150406)
	var w eventWheel
	var ref refQueue
	var now int64
	var seq uint64

	push := func(at int64) {
		if at < now {
			at = now
		}
		w.push(&event{at: at, seq: seq})
		heap.Push(&ref, &event{at: at, seq: seq})
		seq++
	}
	pop := func() {
		we := w.pop()
		re := heap.Pop(&ref).(*event)
		if we.at != re.at || we.seq != re.seq {
			t.Fatalf("pop diverged: wheel (at=%d seq=%d) vs heap (at=%d seq=%d)",
				we.at, we.seq, re.at, re.seq)
		}
		if we.at < now {
			t.Fatalf("time went backwards: %d after %d", we.at, now)
		}
		now = we.at
	}

	// Delay mixture, ns: same instant, in-slot, near (L0), seconds (L1),
	// minutes (L1), hours and days (far heap).
	delay := func() int64 {
		switch rng.Intn(12) {
		case 0:
			return 0
		case 1, 2:
			return int64(rng.Intn(1 << tickShift)) // within one slot
		case 3, 4, 5, 6:
			return int64(rng.Intn(int(time.Second))) // L0 range
		case 7, 8:
			return int64(rng.Intn(int(time.Minute))) // L1 range
		case 9:
			return int64(rng.Intn(int(time.Hour))) // deep L1
		case 10:
			return int64(time.Hour) + int64(rng.Intn(int(24*time.Hour))) // far
		default:
			return int64(24*time.Hour) + int64(rng.Intn(int(10*24*time.Hour))) // deep far
		}
	}

	for i := 0; i < 300_000; i++ {
		if len(ref) == 0 || rng.Intn(5) < 3 {
			push(now + delay())
		} else {
			pop()
		}
	}
	for len(ref) > 0 {
		pop()
	}
	if w.pop() != nil {
		t.Fatal("wheel still had events after reference heap drained")
	}
	if w.pending != 0 {
		t.Fatalf("wheel pending = %d after drain", w.pending)
	}
}

// TestWheelTimerPrecision pins exact firing instants across all three
// structures: due slot (0), L0 (sub-second), L1 cascade (seconds to
// minutes), and the far heap (beyond the ~73 min L1 horizon).
func TestWheelTimerPrecision(t *testing.T) {
	net := New(LatencyModel{}, 1)
	net.AddNode("n", Placement{Region: "r", Cluster: "c"}, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {}))
	start := net.Now()
	delays := []time.Duration{
		0, 100 * time.Microsecond, 900 * time.Millisecond,
		1500 * time.Millisecond, 70 * time.Second, 40 * time.Minute,
		90 * time.Minute, 26 * time.Hour,
	}
	fired := make(map[time.Duration]time.Time)
	for _, d := range delays {
		d := d
		net.After(d, func() { fired[d] = net.Now() })
	}
	net.Run()
	for _, d := range delays {
		at, ok := fired[d]
		if !ok {
			t.Fatalf("timer at %v never fired", d)
		}
		if want := start.Add(d); !at.Equal(want) {
			t.Errorf("timer %v fired at %v, want %v", d, at, want)
		}
	}
}

// TestFIFOAcrossWheelPromotion sends many messages down one link whose
// extra latency swings from microseconds to hours in random order, so in-
// flight arrivals for the same link live in the due heap, L0, L1, and the
// far heap simultaneously. The per-link FIFO clamp must still deliver them
// in send order.
func TestFIFOAcrossWheelPromotion(t *testing.T) {
	lat := DefaultLatency() // jitter on
	net := New(lat, 99)
	p := Placement{Region: "r", Cluster: "c"}
	var got []int
	net.AddNode("a", p, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {}))
	net.AddNode("b", p, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
		got = append(got, msg.(int))
	}))
	rng := stats.NewRNG(5)
	spikes := []time.Duration{
		0, time.Millisecond, 700 * time.Millisecond, 3 * time.Second,
		2 * time.Minute, time.Hour, 3 * time.Hour,
	}
	const msgs = 500
	for i := 0; i < msgs; i++ {
		net.SetLinkLatency("a", "b", spikes[rng.Intn(len(spikes))])
		net.Send("a", "b", i)
	}
	net.Run()
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: position %d got message %d", i, v)
		}
	}
}

// TestEventPoolReuse churns the freelist hard — every delivery recycles an
// event that an in-flight message may immediately reuse — and checks that
// payloads never alias: each received value must be exactly the one sent.
// `make race` runs this under the race detector.
func TestEventPoolReuse(t *testing.T) {
	net := New(DefaultLatency(), 3)
	p := Placement{Region: "r", Cluster: "c"}
	const rounds = 20_000
	recvA, recvB := 0, 0
	net.AddNode("a", p, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
		v := msg.(int)
		if from == "a" {
			return // timer echo
		}
		if v != recvA {
			t.Fatalf("a expected %d, got %d", recvA, v)
		}
		recvA++
		if v+1 < rounds {
			ctx.SetTimer(time.Duration(v%7)*time.Microsecond, v) // churn timers too
			ctx.Send("b", v+1)
		}
	}))
	net.AddNode("b", p, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
		v := msg.(int)
		if from == "b" {
			return // timer echo
		}
		if v != recvB+1 {
			t.Fatalf("b expected %d, got %d", recvB+1, v)
		}
		recvB = v
		ctx.Send("a", v)
	}))
	net.Send("b", "a", 0)
	net.Run()
	if recvB != rounds-1 {
		t.Fatalf("ping-pong stopped at %d", recvB)
	}
	if net.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after Run", net.QueueLen())
	}
}

// TestNodeIDsSorted is the regression for the map-order audit: fleet setup
// code iterates NodeIDs, so the order must be deterministic.
func TestNodeIDsSorted(t *testing.T) {
	net := New(DefaultLatency(), 1)
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {})
	p := Placement{Region: "r", Cluster: "c"}
	for _, id := range []NodeID{"zed", "alpha", "mid", "beta", "omega"} {
		net.AddNode(id, p, h)
	}
	got := net.NodeIDs()
	want := []NodeID{"alpha", "beta", "mid", "omega", "zed"}
	if len(got) != len(want) {
		t.Fatalf("NodeIDs len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeIDs[%d] = %q, want %q (must be sorted)", i, got[i], want[i])
		}
	}
}

// TestSetLossClears is the regression for the stale zero-entry bug: a
// FaultPlan that clears loss with SetLoss(a, b, 0) must delete the map
// entry, exactly like SetLossOneWay already did.
func TestSetLossClears(t *testing.T) {
	net := New(LatencyModel{SameCluster: time.Millisecond}, 1)
	p := Placement{Region: "r", Cluster: "c"}
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {})
	net.AddNode("a", p, h)
	net.AddNode("b", p, h)
	net.SetLoss("a", "b", 1.0)
	net.Send("a", "b", "x")
	if net.Dropped != 1 {
		t.Fatalf("Dropped = %d with loss 1.0, want 1", net.Dropped)
	}
	net.SetLoss("a", "b", 0)
	if len(net.lossRate) != 0 {
		t.Fatalf("SetLoss(0) left %d stale entries", len(net.lossRate))
	}
	net.Send("a", "b", "y")
	net.Run()
	if net.Delivered != 1 {
		t.Fatalf("Delivered = %d after clearing loss, want 1", net.Delivered)
	}
}

// TestBroadcastSemantics checks the shared-payload wave against an
// equivalent loop of sends: every recipient gets the message, bytes are
// charged per copy, and serialization is charged once per wave (so the
// wave's first arrival beats the per-recipient encode of a send loop).
func TestBroadcastSemantics(t *testing.T) {
	lat := LatencyModel{SameCluster: time.Millisecond, SerializePerKB: time.Millisecond}
	p := Placement{Region: "r", Cluster: "c"}
	const size = 10 * 1024
	const fanout = 8

	build := func() (*Network, *[]NodeID, *map[NodeID]time.Time) {
		net := New(lat, 42)
		arrivals := make(map[NodeID]time.Time)
		tos := make([]NodeID, 0, fanout)
		net.AddNode("src", p, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {}))
		for i := 0; i < fanout; i++ {
			id := NodeID(fmt.Sprintf("dst-%d", i))
			tos = append(tos, id)
			net.AddNode(id, p, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
				arrivals[ctx.Self()] = ctx.Now()
			}))
		}
		return net, &tos, &arrivals
	}

	bnet, btos, barr := build()
	bnet.Broadcast("src", *btos, "payload", size)
	bnet.Run()
	if bnet.Delivered != fanout {
		t.Fatalf("broadcast delivered %d, want %d", bnet.Delivered, fanout)
	}
	if want := uint64(size * fanout); bnet.BytesSent != want {
		t.Fatalf("broadcast BytesSent = %d, want %d (bytes are per copy)", bnet.BytesSent, want)
	}
	if got := bnet.LinkBytes("src", (*btos)[0]); got != size {
		t.Fatalf("link bytes = %d, want %d", got, size)
	}
	if got := bnet.NodeBytesOut("src"); got != uint64(size*fanout) {
		t.Fatalf("src bytesOut = %d, want %d", got, size*fanout)
	}

	snet, stos, sarr := build()
	for _, to := range *stos {
		snet.SendSized("src", to, "payload", size)
	}
	snet.Run()

	// Same copies on the wire either way; the wave pays encode once while
	// the loop pays it per recipient, so every broadcast arrival after the
	// first must be strictly earlier than its send-loop counterpart.
	if snet.BytesSent != bnet.BytesSent {
		t.Fatalf("send loop BytesSent = %d, broadcast = %d", snet.BytesSent, bnet.BytesSent)
	}
	later := 0
	for _, id := range *btos {
		ba, sa := (*barr)[id], (*sarr)[id]
		if ba.IsZero() || sa.IsZero() {
			t.Fatalf("missing arrival for %s", id)
		}
		if ba.After(sa) {
			later++
		}
	}
	if later > 0 {
		t.Fatalf("%d broadcast arrivals were later than the per-recipient send loop", later)
	}
}

// TestBroadcastDropsRespectFaults checks the wave honors partitions, loss,
// and a down source just like SendSized.
func TestBroadcastDropsRespectFaults(t *testing.T) {
	net := New(LatencyModel{SameCluster: time.Millisecond}, 7)
	p := Placement{Region: "r", Cluster: "c"}
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {})
	net.AddNode("src", p, h)
	tos := []NodeID{"d0", "d1", "d2"}
	for _, id := range tos {
		net.AddNode(id, p, h)
	}
	net.Partition("src", "d1")
	net.SetLossOneWay("src", "d2", 1.0)
	net.Broadcast("src", tos, "m", 0)
	net.Run()
	if net.Delivered != 1 || net.Dropped != 2 {
		t.Fatalf("Delivered=%d Dropped=%d, want 1/2", net.Delivered, net.Dropped)
	}
	net.Fail("src")
	net.Broadcast("src", tos, "m", 0)
	if net.Dropped != 5 {
		t.Fatalf("down source: Dropped=%d, want 5", net.Dropped)
	}
}

// TestNetworkDeterminismLargeFanout runs the same seeded 1k-node random
// workload twice — random sized sends, broadcasts, and timers — and
// requires bit-identical delivery schedules and counters.
func TestNetworkDeterminismLargeFanout(t *testing.T) {
	run := func() (digest uint64, delivered, dropped, bytes uint64) {
		net := New(DefaultLatency(), 1234)
		const nodes = 1000
		ids := make([]NodeID, nodes)
		for i := range ids {
			ids[i] = NodeID(fmt.Sprintf("n-%03d", i))
			p := Placement{
				Region:  fmt.Sprintf("r%d", i%3),
				Cluster: fmt.Sprintf("c%d", i%10),
			}
			net.AddNode(ids[i], p, HandlerFunc(func(ctx *Context, from NodeID, msg Message) {
				// Fold every delivery instant into an order-sensitive digest.
				digest = digest*1099511628211 + uint64(ctx.Now().UnixNano())
			}))
		}
		wl := stats.NewRNG(777)
		for i := 0; i < 2000; i++ {
			switch wl.Intn(4) {
			case 0:
				net.Send(ids[wl.Intn(nodes)], ids[wl.Intn(nodes)], i)
			case 1:
				net.SendSized(ids[wl.Intn(nodes)], ids[wl.Intn(nodes)], i, 1+wl.Intn(4096))
			case 2:
				net.SetTimer(ids[wl.Intn(nodes)], time.Duration(wl.Intn(int(3*time.Second))), i)
			default:
				tos := make([]NodeID, 0, 20)
				for k := 0; k < 20; k++ {
					tos = append(tos, ids[wl.Intn(nodes)])
				}
				net.Broadcast(ids[wl.Intn(nodes)], tos, i, 512)
			}
		}
		net.Run()
		return digest, net.Delivered, net.Dropped, net.BytesSent
	}
	d1, del1, drop1, b1 := run()
	d2, del2, drop2, b2 := run()
	if d1 != d2 || del1 != del2 || drop1 != drop2 || b1 != b2 {
		t.Fatalf("same-seed runs diverged: digest %d/%d delivered %d/%d dropped %d/%d bytes %d/%d",
			d1, d2, del1, del2, drop1, drop2, b1, b2)
	}
}

// TestSendZeroAllocWarm asserts the steady-state promise directly: once
// the freelist and link maps are warm, Send+Step and SetTimer+Step
// allocate nothing.
func TestSendZeroAllocWarm(t *testing.T) {
	net := New(DefaultLatency(), 9)
	p := Placement{Region: "r", Cluster: "c"}
	h := HandlerFunc(func(ctx *Context, from NodeID, msg Message) {})
	net.AddNode("a", p, h)
	net.AddNode("b", p, h)
	msg := &struct{}{}
	for i := 0; i < 1000; i++ { // warm freelist, maps, due-heap capacity
		net.SendSized("a", "b", msg, 1024)
		net.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		net.SendSized("a", "b", msg, 1024)
		net.Step()
	}); allocs != 0 {
		t.Fatalf("warm SendSized+Step allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		net.SetTimer("a", time.Millisecond, msg)
		net.Step()
	}); allocs != 0 {
		t.Fatalf("warm SetTimer+Step allocates %.1f/op, want 0", allocs)
	}
}
