package sitevars

import (
	"fmt"

	"configerator/internal/core"
)

// Bridge stores sitevars through the Configerator pipeline — the shim-
// layer arrangement of §3.2 and Figure 1: Sitevars provides the easy
// name-value UI, Configerator underneath provides version control, review,
// canary, and distribution. Each sitevar becomes a raw JSON artifact under
// sitevars/<name>.json, so the frontend reads it through the ordinary
// client library.
type Bridge struct {
	store    *Store
	pipeline *core.Pipeline
	// PathPrefix locates sitevar artifacts in the repository namespace.
	PathPrefix string
}

// NewBridge wires a sitevar store onto a pipeline.
func NewBridge(p *core.Pipeline) *Bridge {
	return &Bridge{store: NewStore(), pipeline: p, PathPrefix: "sitevars/"}
}

// Store exposes the underlying sitevar store (checkers, inference).
func (b *Bridge) Store() *Store { return b.store }

// ArtifactPath maps a sitevar name to its repository path.
func (b *Bridge) ArtifactPath(name string) string {
	return b.PathPrefix + name + ".json"
}

// ZeusPath maps a sitevar name to its distribution path.
func (b *Bridge) ZeusPath(name string) string {
	return core.ZeusPath(b.ArtifactPath(name))
}

// SetResult reports one UI update.
type SetResult struct {
	// Warnings are the type-inference deviations shown in the UI.
	Warnings []string
	// Report is the pipeline's account (review, canary, landing).
	Report *core.ChangeReport
}

// Set evaluates the expression, runs the checker and type inference, and
// submits the resulting JSON through the full pipeline. The engineer sees
// warnings but they do not block (the paper's UI behaviour); a checker
// failure or a pipeline rejection does.
func (b *Bridge) Set(name, expr, author, reviewer string, opts ...core.Option) (*SetResult, error) {
	warnings, err := b.store.Set(name, expr)
	if err != nil {
		return nil, err
	}
	sv, _ := b.store.Get(name)
	req := &core.ChangeRequest{
		Author:   author,
		Reviewer: reviewer,
		Title:    fmt.Sprintf("sitevar %s = %s", name, truncate(expr, 60)),
		Raws:     map[string][]byte{b.ArtifactPath(name): sv.JSON},
	}
	for _, o := range opts {
		o(req)
	}
	report := b.pipeline.Submit(req)
	res := &SetResult{Warnings: warnings, Report: report}
	if !report.OK() {
		return res, fmt.Errorf("sitevars: %s blocked at %s: %w", name, report.FailedStage, report.Err)
	}
	return res, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
