package sitevars

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"configerator/internal/cdl"
	"configerator/internal/cluster"
	"configerator/internal/core"
)

func newBridge(t *testing.T) (*Bridge, *cluster.Fleet) {
	t.Helper()
	fleet := cluster.New(cluster.SmallConfig(3, 21))
	fleet.Net.RunFor(10 * time.Second)
	p := core.New(core.Options{Fleet: fleet})
	return NewBridge(p), fleet
}

func TestBridgeSetDistributes(t *testing.T) {
	b, fleet := newBridge(t)
	fleet.SubscribeAll(b.ZeusPath("max_upload_mb"))
	res, err := b.Set("max_upload_mb", `{limit: 25, burst: 40}`, "alice", "bob", core.SkipCanary())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings = %v", res.Warnings)
	}
	fleet.Net.RunFor(20 * time.Second)
	srv := fleet.AllServers()[0]
	cfg, err := srv.Client.Get(context.Background(), b.ZeusPath("max_upload_mb"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Int("limit", 0) != 25 {
		t.Errorf("limit = %d", cfg.Int("limit", 0))
	}
}

func TestBridgeWarningsSurfaceButDoNotBlock(t *testing.T) {
	b, _ := newBridge(t)
	if _, err := b.Set("flag", "true", "alice", "bob", core.SkipCanary()); err != nil {
		t.Fatal(err)
	}
	res, err := b.Set("flag", `"yes"`, "alice", "bob", core.SkipCanary())
	if err != nil {
		t.Fatal(err) // warning, not an error
	}
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[0], "deviates") {
		t.Errorf("warnings = %v", res.Warnings)
	}
	if !res.Report.OK() {
		t.Error("warned update should still land")
	}
}

func TestBridgeCheckerBlocks(t *testing.T) {
	b, _ := newBridge(t)
	b.Store().SetChecker("quota", func(v cdl.Value) error {
		if n, ok := v.(cdl.Int); !ok || n < 0 {
			return errors.New("quota must be nonnegative int")
		}
		return nil
	})
	if _, err := b.Set("quota", "-3", "alice", "bob", core.SkipCanary()); err == nil {
		t.Fatal("checker should block the update")
	}
	// Nothing landed.
	if _, err := b.pipeline.ReadArtifact(b.ArtifactPath("quota")); err == nil {
		t.Fatal("blocked sitevar landed anyway")
	}
}

func TestBridgeSyntaxErrorBlocks(t *testing.T) {
	b, _ := newBridge(t)
	if _, err := b.Set("bad", "1 +", "alice", "bob"); err == nil {
		t.Fatal("syntax error should block")
	}
}

func TestBridgeSelfReviewBlocked(t *testing.T) {
	b, _ := newBridge(t)
	res, err := b.Set("x", "1", "alice", "alice", core.SkipCanary())
	if err == nil {
		t.Fatal("self-review should block")
	}
	if res.Report.FailedStage != "review" {
		t.Errorf("failed at %s", res.Report.FailedStage)
	}
}
