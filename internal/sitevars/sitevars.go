// Package sitevars implements Sitevars (§3.2): a shim layer on top of
// Configerator providing configurable name-value pairs for the frontend
// products. A sitevar's value is an expression (PHP in the paper, CDL
// here) edited through a UI without writing Python/Thrift config code.
//
// Because the value language is weakly typed, sitevars are more prone to
// configuration errors such as typos. A sitevar may have an explicit
// checker; for legacy sitevars without one, the tool automatically infers
// a data type from the value's history — including whether a string field
// is a JSON string, a timestamp string, or a general string — and warns
// the engineer when an update deviates from the inferred type.
package sitevars

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"configerator/internal/cdl"
)

// TypeClass is an inferred value type.
type TypeClass int

// Inferred types. StringJSON and StringTimestamp are refinements of
// StringGeneral, exactly as the paper describes the inference.
const (
	TypeUnknown TypeClass = iota
	TypeNull
	TypeBool
	TypeInt
	TypeFloat
	TypeStringGeneral
	TypeStringJSON
	TypeStringTimestamp
	TypeList
	TypeMap
)

// String names the type class.
func (t TypeClass) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeBool:
		return "bool"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeStringGeneral:
		return "string"
	case TypeStringJSON:
		return "json-string"
	case TypeStringTimestamp:
		return "timestamp-string"
	case TypeList:
		return "list"
	case TypeMap:
		return "map"
	}
	return "unknown"
}

// Classify infers the type class of a value.
func Classify(v cdl.Value) TypeClass {
	switch x := v.(type) {
	case cdl.Null:
		return TypeNull
	case cdl.Bool:
		return TypeBool
	case cdl.Int:
		return TypeInt
	case cdl.Float:
		return TypeFloat
	case cdl.Str:
		return classifyString(string(x))
	case cdl.List:
		return TypeList
	case cdl.Map:
		return TypeMap
	}
	return TypeUnknown
}

func classifyString(s string) TypeClass {
	if isTimestampString(s) {
		return TypeStringTimestamp
	}
	if isJSONString(s) {
		return TypeStringJSON
	}
	return TypeStringGeneral
}

func isJSONString(s string) bool {
	if len(s) == 0 {
		return false
	}
	switch s[0] {
	case '{', '[':
		return json.Valid([]byte(s))
	}
	return false
}

func isTimestampString(s string) bool {
	if _, err := time.Parse(time.RFC3339, s); err == nil {
		return true
	}
	if _, err := time.Parse("2006-01-02", s); err == nil {
		return true
	}
	// Unix seconds/millis in a plausible range (2001..2128).
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n > 1_000_000_000 && n < 5_000_000_000 {
			return true
		}
		if n > 1_000_000_000_000 && n < 5_000_000_000_000 {
			return true
		}
	}
	return false
}

// compatible reports whether an observed class conforms to an inferred
// one. General strings accept the refined string classes' values only in
// one direction: if history says "JSON string", a general string is a
// deviation; if history says "general string", any string conforms.
func compatible(inferred, observed TypeClass) bool {
	if inferred == observed {
		return true
	}
	if inferred == TypeStringGeneral {
		return observed == TypeStringJSON || observed == TypeStringTimestamp
	}
	if (inferred == TypeFloat && observed == TypeInt) ||
		(inferred == TypeInt && observed == TypeFloat) {
		return true // numeric widening in either direction is tolerated
	}
	return false
}

// Checker validates a sitevar value (the PHP checker of the paper).
type Checker func(v cdl.Value) error

// Sitevar is one name-value pair with its history-derived schema.
type Sitevar struct {
	Name string
	Expr string
	// Value is the current evaluated value; JSON its artifact form.
	Value cdl.Value
	JSON  []byte
	// top is the inferred class of the whole value; fields are the
	// inferred classes of map fields (when the value is a map).
	top     TypeClass
	fields  map[string]TypeClass
	checker Checker
	Updates int
}

// InferredType reports the inferred top-level class.
func (s *Sitevar) InferredType() TypeClass { return s.top }

// FieldType reports the inferred class of a map field.
func (s *Sitevar) FieldType(name string) TypeClass { return s.fields[name] }

// Store holds all sitevars.
type Store struct {
	vars map[string]*Sitevar
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{vars: make(map[string]*Sitevar)}
}

// Get returns a sitevar by name.
func (st *Store) Get(name string) (*Sitevar, bool) {
	sv, ok := st.vars[name]
	return sv, ok
}

// Names returns the number of sitevars.
func (st *Store) Len() int { return len(st.vars) }

// SetChecker attaches an explicit checker; it runs on every future Set.
func (st *Store) SetChecker(name string, c Checker) {
	if sv, ok := st.vars[name]; ok {
		sv.checker = c
	} else {
		st.vars[name] = &Sitevar{Name: name, checker: c}
	}
}

// Set evaluates expr and updates the sitevar. The error is fatal (syntax
// error, checker failure); warnings report type deviations from the
// inferred history — the UI shows them to the engineer, who may proceed.
func (st *Store) Set(name, expr string) (warnings []string, err error) {
	v, err := cdl.EvalExpr(expr)
	if err != nil {
		return nil, fmt.Errorf("sitevars: %s: %w", name, err)
	}
	sv, ok := st.vars[name]
	if !ok {
		sv = &Sitevar{Name: name}
		st.vars[name] = sv
	}
	if sv.checker != nil {
		if cerr := sv.checker(v); cerr != nil {
			return nil, fmt.Errorf("sitevars: %s: checker: %w", name, cerr)
		}
	}
	warnings = sv.checkAgainstHistory(v)
	js, err := cdl.MarshalJSON(v)
	if err != nil {
		return nil, fmt.Errorf("sitevars: %s: %w", name, err)
	}
	sv.Expr = expr
	sv.Value = v
	sv.JSON = []byte(js)
	sv.Updates++
	sv.learn(v)
	return warnings, nil
}

// checkAgainstHistory produces deviation warnings against inferred types.
func (sv *Sitevar) checkAgainstHistory(v cdl.Value) []string {
	if sv.Updates == 0 {
		return nil // nothing learned yet
	}
	var warns []string
	cls := Classify(v)
	if !compatible(sv.top, cls) {
		warns = append(warns, fmt.Sprintf(
			"sitevar %s: value type %s deviates from inferred type %s",
			sv.Name, cls, sv.top))
	}
	if m, ok := v.(cdl.Map); ok && sv.top == TypeMap {
		for k, fv := range m {
			inferred, seen := sv.fields[k]
			if !seen {
				continue // new field: learned below
			}
			got := Classify(fv)
			if !compatible(inferred, got) {
				warns = append(warns, fmt.Sprintf(
					"sitevar %s: field %q type %s deviates from inferred type %s",
					sv.Name, k, got, inferred))
			}
		}
	}
	return warns
}

// learn folds the accepted value into the inferred schema. Conflicting
// observations generalize (e.g. JSON string then general string →
// general string; int then float → float).
func (sv *Sitevar) learn(v cdl.Value) {
	cls := Classify(v)
	sv.top = generalize(sv.top, cls, sv.Updates == 1)
	if m, ok := v.(cdl.Map); ok {
		if sv.fields == nil {
			sv.fields = make(map[string]TypeClass)
		}
		for k, fv := range m {
			prev, seen := sv.fields[k]
			fcls := Classify(fv)
			if !seen {
				sv.fields[k] = fcls
			} else {
				sv.fields[k] = generalize(prev, fcls, false)
			}
		}
	}
}

func generalize(prev, next TypeClass, first bool) TypeClass {
	if first || prev == next {
		return next
	}
	isString := func(t TypeClass) bool {
		return t == TypeStringGeneral || t == TypeStringJSON || t == TypeStringTimestamp
	}
	switch {
	case isString(prev) && isString(next):
		return TypeStringGeneral
	case (prev == TypeInt && next == TypeFloat) || (prev == TypeFloat && next == TypeInt):
		return TypeFloat
	default:
		return next // accept the engineer's override; future warns use it
	}
}
