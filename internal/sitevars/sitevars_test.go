package sitevars

import (
	"errors"
	"strings"
	"testing"

	"configerator/internal/cdl"
)

func TestSetAndGet(t *testing.T) {
	st := NewStore()
	if _, err := st.Set("max_upload_mb", "25"); err != nil {
		t.Fatal(err)
	}
	sv, ok := st.Get("max_upload_mb")
	if !ok || string(sv.JSON) != "25" {
		t.Fatalf("sv = %+v", sv)
	}
	if sv.InferredType() != TypeInt {
		t.Errorf("inferred = %v", sv.InferredType())
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
}

func TestExpressionValues(t *testing.T) {
	st := NewStore()
	if _, err := st.Set("ramp", `{rate: 0.05 * 2, hosts: ["a", "b"]}`); err != nil {
		t.Fatal(err)
	}
	sv, _ := st.Get("ramp")
	if string(sv.JSON) != `{"hosts":["a","b"],"rate":0.1}` {
		t.Errorf("JSON = %s", sv.JSON)
	}
}

func TestSyntaxErrorRejected(t *testing.T) {
	st := NewStore()
	if _, err := st.Set("bad", "1 +"); err == nil {
		t.Fatal("expected syntax error")
	}
}

func TestCheckerRejects(t *testing.T) {
	st := NewStore()
	st.SetChecker("quota", func(v cdl.Value) error {
		if n, ok := v.(cdl.Int); !ok || n < 0 {
			return errors.New("quota must be a nonnegative int")
		}
		return nil
	})
	if _, err := st.Set("quota", "10"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Set("quota", "-5"); err == nil {
		t.Fatal("checker should reject negative quota")
	}
	if _, err := st.Set("quota", `"lots"`); err == nil {
		t.Fatal("checker should reject string quota")
	}
}

func TestTypeDeviationWarning(t *testing.T) {
	st := NewStore()
	if _, err := st.Set("flag", "true"); err != nil {
		t.Fatal(err)
	}
	warns, err := st.Set("flag", `"yes"`) // typo'd string where bool lived
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "deviates") {
		t.Fatalf("warns = %v", warns)
	}
	// Conforming update warns nothing.
	warns, _ = st.Set("flag", `"no"`) // schema generalized to the override
	_ = warns
}

func TestFieldTypeInference(t *testing.T) {
	st := NewStore()
	if _, err := st.Set("cfg", `{limit: 10, when: "2015-10-04", blob: "{\"a\":1}", note: "hello"}`); err != nil {
		t.Fatal(err)
	}
	sv, _ := st.Get("cfg")
	if sv.FieldType("limit") != TypeInt {
		t.Errorf("limit = %v", sv.FieldType("limit"))
	}
	if sv.FieldType("when") != TypeStringTimestamp {
		t.Errorf("when = %v", sv.FieldType("when"))
	}
	if sv.FieldType("blob") != TypeStringJSON {
		t.Errorf("blob = %v", sv.FieldType("blob"))
	}
	if sv.FieldType("note") != TypeStringGeneral {
		t.Errorf("note = %v", sv.FieldType("note"))
	}
	// A JSON-string field receiving a non-JSON string warns.
	warns, err := st.Set("cfg", `{limit: 10, when: "2015-10-05", blob: "oops", note: "x"}`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, `"blob"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("no blob warning in %v", warns)
	}
}

func TestGeneralStringAcceptsRefinements(t *testing.T) {
	st := NewStore()
	if _, err := st.Set("s", `"just text"`); err != nil {
		t.Fatal(err)
	}
	warns, err := st.Set("s", `"2015-10-04"`) // timestamp is still a string
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("warns = %v", warns)
	}
}

func TestIntToFloatGeneralizes(t *testing.T) {
	st := NewStore()
	st.Set("rate", "1")
	warns, _ := st.Set("rate", "1.5")
	if len(warns) != 0 {
		t.Errorf("int->float should be tolerated, warns = %v", warns)
	}
	sv, _ := st.Get("rate")
	if sv.InferredType() != TypeFloat {
		t.Errorf("inferred = %v", sv.InferredType())
	}
	// And back to int conforms (float schema accepts ints).
	warns, _ = st.Set("rate", "2")
	if len(warns) != 0 {
		t.Errorf("float schema should accept int, warns = %v", warns)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		v    cdl.Value
		want TypeClass
	}{
		{cdl.Null{}, TypeNull},
		{cdl.Bool(true), TypeBool},
		{cdl.Int(3), TypeInt},
		{cdl.Float(2.5), TypeFloat},
		{cdl.Str("plain"), TypeStringGeneral},
		{cdl.Str(`{"a":1}`), TypeStringJSON},
		{cdl.Str(`[1,2]`), TypeStringJSON},
		{cdl.Str("2015-10-04T12:00:00Z"), TypeStringTimestamp},
		{cdl.Str("1443916800"), TypeStringTimestamp},
		{cdl.Str("12"), TypeStringGeneral}, // small number: not a timestamp
		{cdl.List{}, TypeList},
		{cdl.Map{}, TypeMap},
	}
	for _, c := range cases {
		if got := Classify(c.v); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestTypeClassString(t *testing.T) {
	if TypeStringJSON.String() != "json-string" || TypeMap.String() != "map" {
		t.Error("TypeClass.String broken")
	}
	if TypeUnknown.String() != "unknown" {
		t.Error("unknown")
	}
}

func TestNewFieldLearnedWithoutWarning(t *testing.T) {
	st := NewStore()
	st.Set("cfg", `{a: 1}`)
	warns, err := st.Set("cfg", `{a: 2, b: "new"}`)
	if err != nil || len(warns) != 0 {
		t.Fatalf("warns=%v err=%v", warns, err)
	}
	sv, _ := st.Get("cfg")
	if sv.FieldType("b") != TypeStringGeneral {
		t.Errorf("b = %v", sv.FieldType("b"))
	}
}
