package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a small concurrency-safe named-counter set, used by the CDL
// compilation engine to surface cache hit/miss/eviction rates through the
// benchmark harness.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments the named counter by delta (no-op on a nil receiver, so
// instrumented code does not need nil checks).
func (c *Counters) Add(name string, delta int64) {
	if c == nil || delta == 0 {
		return
	}
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value (0 when absent or nil receiver).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if c == nil {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Table renders the counters as an aligned two-column table, sorted by
// name for deterministic output, with a trailing total row.
func (c *Counters) Table(title string) string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	var total int64
	for n, v := range snap {
		names = append(names, n)
		total += v
	}
	sort.Strings(names)
	t := NewTable(title, "counter", "value")
	for _, n := range names {
		t.AddRawRow(n, snap[n])
	}
	t.AddRawRow("total", total)
	return t.String()
}

// JSON returns the counters as a JSON object with keys in sorted order, so
// two runs with the same counts produce byte-identical output (benchreport
// artifacts are diffed across runs).
func (c *Counters) JSON() []byte {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", n, snap[n])
	}
	b.WriteByte('}')
	return []byte(b.String())
}
