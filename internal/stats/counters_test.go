package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Add("parse.hit", 2)
	c.Add("parse.hit", 3)
	c.Add("parse.miss", 1)
	if got := c.Get("parse.hit"); got != 5 {
		t.Errorf("Get(parse.hit) = %d", got)
	}
	if got := c.Get("absent"); got != 0 {
		t.Errorf("Get(absent) = %d", got)
	}
	snap := c.Snapshot()
	c.Add("parse.hit", 10)
	if snap["parse.hit"] != 5 {
		t.Error("Snapshot must be detached from live counters")
	}
	tbl := c.Table("title")
	if !strings.Contains(tbl, "title") || !strings.Contains(tbl, "parse.hit") {
		t.Errorf("Table = %q", tbl)
	}
	// Sorted rows: hit before miss.
	if strings.Index(tbl, "parse.hit") > strings.Index(tbl, "parse.miss") {
		t.Error("Table rows not sorted by counter name")
	}
	// Total row trails the sorted counters: 15 + 1 at snapshot+10 time.
	if !strings.Contains(tbl, "total") || strings.Index(tbl, "total") < strings.Index(tbl, "parse.miss") {
		t.Errorf("Table missing trailing total row: %q", tbl)
	}
	if !strings.Contains(tbl, "16") {
		t.Errorf("Table total should be 16: %q", tbl)
	}
}

func TestCountersJSON(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("c", 3)
	if got := string(c.JSON()); got != `{"a":1,"b":2,"c":3}` {
		t.Errorf("JSON = %s", got)
	}
	if got := string(NewCounters().JSON()); got != "{}" {
		t.Errorf("empty JSON = %s", got)
	}
	var nilC *Counters
	if got := string(nilC.JSON()); got != "{}" {
		t.Errorf("nil JSON = %s", got)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Add("x", 1) // must not panic
	if c.Get("x") != 0 {
		t.Error("nil Get")
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Errorf("nil Snapshot = %v, want empty", snap)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
}
