package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64).
// Every simulation in this repository threads an explicit *RNG so that runs
// are reproducible; the global math/rand state is never used.
type RNG struct {
	state uint64
	// cached spare normal variate for Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Norm returns a standard normal variate (Box-Muller, with caching).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Lognormal draws from the given lognormal distribution.
func (r *RNG) Lognormal(l Lognormal) float64 {
	return l.Sample(r.Norm())
}

// Pareto returns a Pareto variate with minimum xm and shape alpha; the
// heavy tail drives the "top 1% of configs take most updates" skew.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator; deterministic given the parent
// state, so subsystems can be given their own stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Hash64 mixes arbitrary bytes into a 64-bit value with the same finalizer
// as the RNG; used for deterministic per-entity sampling (e.g., Gatekeeper
// user bucketing) without constructing a generator.
func Hash64(data string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(data); i++ {
		h ^= uint64(data[i])
		h *= 0x100000001b3
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// HashFloat maps arbitrary bytes to a uniform [0,1) value; deterministic.
func HashFloat(data string) float64 {
	return float64(Hash64(data)>>11) / (1 << 53)
}
