// Package stats provides the statistical utilities used throughout the
// reproduction: empirical CDFs, quantiles, histograms, calibrated samplers
// (lognormal, Zipf-like power laws), and plain-text table/series rendering
// for the benchmark harness that regenerates the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is empty; Add samples and then query. All query methods
// sort lazily and are safe to call repeatedly.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF returns a CDF primed with the given samples.
func NewCDF(samples ...float64) *CDF {
	c := &CDF{}
	c.AddAll(samples)
	return c
}

// Add appends one sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// AddAll appends many samples.
func (c *CDF) AddAll(xs []float64) {
	c.samples = append(c.samples, xs...)
	c.sorted = false
}

// N reports the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It panics on an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		panic("stats: Quantile on empty CDF")
	}
	c.ensureSorted()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	pos := q * float64(len(c.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.samples[lo]
	}
	frac := pos - float64(lo)
	return c.samples[lo]*(1-frac) + c.samples[hi]*frac
}

// FractionAtMost returns the fraction of samples <= x.
func (c *CDF) FractionAtMost(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	idx := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.samples))
}

// Mean returns the arithmetic mean of the samples (0 for empty).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range c.samples {
		sum += x
	}
	return sum / float64(len(c.samples))
}

// Min returns the smallest sample. It panics on an empty CDF.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		panic("stats: Min on empty CDF")
	}
	c.ensureSorted()
	return c.samples[0]
}

// Max returns the largest sample. It panics on an empty CDF.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		panic("stats: Max on empty CDF")
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Table renders "x -> F(x)" rows for the given cut points, in the style of
// the paper's CDF figures (Figures 8, 9, 10).
func (c *CDF) Table(points []float64, format string) string {
	var b strings.Builder
	for _, p := range points {
		fmt.Fprintf(&b, format+"\t%5.1f%%\n", p, 100*c.FractionAtMost(p))
	}
	return b.String()
}

// Buckets counts samples per half-open interval [bounds[i-1], bounds[i]),
// with an implicit (-inf, bounds[0]) first bucket and [bounds[last], +inf)
// final bucket. The returned slice has len(bounds)+1 entries.
func (c *CDF) Buckets(bounds []float64) []int {
	counts := make([]int, len(bounds)+1)
	for _, x := range c.samples {
		i := sort.SearchFloat64s(bounds, math.Nextafter(x, math.Inf(1)))
		counts[i]++
	}
	return counts
}

// Histogram is a counter over integer-valued observations, used for the
// paper's frequency tables (Tables 1-3).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Observe records one observation of value v.
func (h *Histogram) Observe(v int) {
	h.counts[v]++
	h.total++
}

// Total reports the number of observations.
func (h *Histogram) Total() int { return h.total }

// Count reports how many observations had exactly value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// FractionExactly reports the fraction of observations with exactly value v.
func (h *Histogram) FractionExactly(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// FractionInRange reports the fraction of observations in [lo, hi].
func (h *Histogram) FractionInRange(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for v, c := range h.counts {
		if v >= lo && v <= hi {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// TopShare returns the share of total "mass" (sum of values) contributed by
// the top-frac fraction of observations when ranked by value. This is the
// statistic behind the paper's "top 1% of raw configs account for 92.8% of
// updates" claim.
func (h *Histogram) TopShare(frac float64) float64 {
	if h.total == 0 {
		return 0
	}
	vals := make([]int, 0, h.total)
	for v, c := range h.counts {
		for i := 0; i < c; i++ {
			vals = append(vals, v)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum == 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(len(vals))))
	if k < 1 {
		k = 1
	}
	top := 0
	for _, v := range vals[:k] {
		top += v
	}
	return float64(top) / float64(sum)
}

// Lognormal is a lognormal distribution sampler parameterised by the
// underlying normal's mu and sigma.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// LognormalFromQuantiles fits a lognormal through two quantile constraints:
// P(X <= x1) = p1 and P(X <= x2) = p2. The paper reports config sizes by
// their P50 and P95, which pins down the two lognormal parameters exactly.
func LognormalFromQuantiles(p1, x1, p2, x2 float64) Lognormal {
	z1 := NormQuantile(p1)
	z2 := NormQuantile(p2)
	sigma := (math.Log(x2) - math.Log(x1)) / (z2 - z1)
	mu := math.Log(x1) - sigma*z1
	return Lognormal{Mu: mu, Sigma: sigma}
}

// Sample draws one value using the supplied standard normal variate z.
func (l Lognormal) Sample(z float64) float64 {
	return math.Exp(l.Mu + l.Sigma*z)
}

// Quantile returns the q-th quantile of the lognormal.
func (l Lognormal) Quantile(q float64) float64 {
	return math.Exp(l.Mu + l.Sigma*NormQuantile(q))
}

// NormQuantile returns the standard normal quantile function (probit) using
// Acklam's rational approximation; absolute error is below 1.15e-9, far more
// than enough for workload calibration.
func NormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormQuantile p=%v out of (0,1)", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormCDF returns the standard normal CDF via erf.
func NormCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
