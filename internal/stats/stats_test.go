package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFQuantileAndFraction(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v, want 100", got)
	}
	if got := c.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 50.5", got)
	}
	if got := c.FractionAtMost(50); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FractionAtMost(50) = %v, want 0.5", got)
	}
	if got := c.FractionAtMost(0); got != 0 {
		t.Errorf("FractionAtMost(0) = %v, want 0", got)
	}
	if got := c.FractionAtMost(1000); got != 1 {
		t.Errorf("FractionAtMost(1000) = %v, want 1", got)
	}
}

func TestCDFEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty CDF Quantile")
		}
	}()
	(&CDF{}).Quantile(0.5)
}

func TestCDFMinMaxMean(t *testing.T) {
	c := NewCDF(3, 1, 2)
	if c.Min() != 1 || c.Max() != 3 {
		t.Errorf("Min/Max = %v/%v, want 1/3", c.Min(), c.Max())
	}
	if got := c.Mean(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestCDFBuckets(t *testing.T) {
	c := NewCDF(1, 2, 3, 10, 20)
	counts := c.Buckets([]float64{2, 10})
	// (-inf,2): 1 -> 1; [2,10): 2,3 -> 2; [10,inf): 10,20 -> 2
	want := []int{1, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestQuantileMonotonic(t *testing.T) {
	rng := NewRNG(7)
	c := NewCDF()
	for i := 0; i < 1000; i++ {
		c.Add(rng.Float64() * 100)
	}
	err := quick.Check(func(a, b float64) bool {
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return c.Quantile(qa) <= c.Quantile(qb)+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFractionAtMostMonotonic(t *testing.T) {
	rng := NewRNG(11)
	c := NewCDF()
	for i := 0; i < 500; i++ {
		c.Add(rng.Norm())
	}
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return c.FractionAtMost(a) <= c.FractionAtMost(b)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	for i := 0; i < 5; i++ {
		h.Observe(3)
	}
	h.Observe(100)
	if h.Total() != 16 {
		t.Fatalf("Total = %d, want 16", h.Total())
	}
	if got := h.FractionExactly(1); math.Abs(got-10.0/16) > 1e-12 {
		t.Errorf("FractionExactly(1) = %v", got)
	}
	if got := h.FractionInRange(1, 3); math.Abs(got-15.0/16) > 1e-12 {
		t.Errorf("FractionInRange(1,3) = %v", got)
	}
}

func TestHistogramTopShare(t *testing.T) {
	h := NewHistogram()
	// 99 configs with 1 update, 1 config with 901 updates: top 1% holds 90.1%.
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(901)
	got := h.TopShare(0.01)
	if math.Abs(got-0.901) > 1e-9 {
		t.Errorf("TopShare(0.01) = %v, want 0.901", got)
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999} {
		z := NormQuantile(p)
		back := NormCDF(z)
		if math.Abs(back-p) > 1e-6 {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", p, back)
		}
	}
	if NormQuantile(0.5) != 0 && math.Abs(NormQuantile(0.5)) > 1e-9 {
		t.Errorf("NormQuantile(0.5) = %v, want 0", NormQuantile(0.5))
	}
}

func TestLognormalFromQuantiles(t *testing.T) {
	// The paper's raw config sizes: P50 = 400 bytes, P95 = 25 KB.
	l := LognormalFromQuantiles(0.50, 400, 0.95, 25000)
	if got := l.Quantile(0.50); math.Abs(got-400) > 1 {
		t.Errorf("P50 = %v, want 400", got)
	}
	if got := l.Quantile(0.95); math.Abs(got-25000) > 50 {
		t.Errorf("P95 = %v, want 25000", got)
	}
}

func TestLognormalSamplerMatchesQuantiles(t *testing.T) {
	l := LognormalFromQuantiles(0.50, 1000, 0.95, 45000)
	rng := NewRNG(42)
	c := NewCDF()
	for i := 0; i < 200000; i++ {
		c.Add(rng.Lognormal(l))
	}
	p50 := c.Quantile(0.5)
	if p50 < 900 || p50 > 1100 {
		t.Errorf("sampled P50 = %v, want ~1000", p50)
	}
	p95 := c.Quantile(0.95)
	if p95 < 40000 || p95 > 50000 {
		t.Errorf("sampled P95 = %v, want ~45000", p95)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 10; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(1)
	sum, sum2 := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64("abc") != Hash64("abc") {
		t.Error("Hash64 must be deterministic")
	}
	if Hash64("abc") == Hash64("abd") {
		t.Error("Hash64 should differ on different inputs")
	}
	f := HashFloat("user:12345")
	if f < 0 || f >= 1 {
		t.Errorf("HashFloat out of range: %v", f)
	}
}

func TestHashFloatUniform(t *testing.T) {
	// Bucket 100k hashed ids into deciles; each should hold ~10%.
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		f := HashFloat(strings.Repeat("x", i%7) + string(rune('a'+i%26)) + itoa(i))
		counts[int(f*10)]++
	}
	for d, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("decile %d has %d, want ~10000", d, c)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X", "bucket", "share")
	tab.AddRow("1", 0.25)
	tab.AddRow("2", 0.499)
	s := tab.String()
	if !strings.Contains(s, "Table X") || !strings.Contains(s, "25.0%") || !strings.Contains(s, "49.9%") {
		t.Errorf("unexpected table rendering:\n%s", s)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i%10))
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.MaxY() != 9 {
		t.Errorf("MaxY = %v, want 9", s.MaxY())
	}
	if math.Abs(s.MeanY()-4.5) > 1e-9 {
		t.Errorf("MeanY = %v, want 4.5", s.MeanY())
	}
	sp := s.Sparkline(20)
	if !strings.Contains(sp, "test") {
		t.Errorf("sparkline missing name: %s", sp)
	}
}

func TestSeriesSparklineEmpty(t *testing.T) {
	var s Series
	if got := s.Sparkline(10); !strings.Contains(got, "empty") {
		t.Errorf("empty sparkline = %q", got)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(3)
	over := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Pareto(1, 1.1) > 10 {
			over++
		}
	}
	// P(X > 10) = 10^-1.1 ~ 0.079
	frac := float64(over) / n
	if frac < 0.06 || frac > 0.10 {
		t.Errorf("Pareto tail fraction = %v, want ~0.079", frac)
	}
}
