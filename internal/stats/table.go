package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for the benchmark harness, which
// reprints the paper's tables (Tables 1-3, Section 6.4) next to our
// measured values.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f%%", 100*v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRawRow appends one row without percentage formatting.
func (t *Table) AddRawRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) series used to reproduce the paper's figures as
// text output (e.g., commit throughput over days, propagation latency over
// a week).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// MaxY returns the maximum y value (0 for empty).
func (s *Series) MaxY() float64 {
	m := 0.0
	for _, y := range s.Y {
		if y > m {
			m = y
		}
	}
	return m
}

// MeanY returns the mean y value (0 for empty).
func (s *Series) MeanY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	sum := 0.0
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

// Sparkline renders the series as a compact unicode sparkline with min/max
// annotations — a terminal-friendly stand-in for the paper's figures.
func (s *Series) Sparkline(width int) string {
	if len(s.Y) == 0 {
		return "(empty series)"
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	// Downsample to width buckets by averaging.
	n := len(s.Y)
	if width <= 0 || width > n {
		width = n
	}
	ys := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * n / width
		hi := (i + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, y := range s.Y[lo:hi] {
			sum += y
		}
		ys[i] = sum / float64(hi-lo)
	}
	minY, maxY := ys[0], ys[0]
	for _, y := range ys {
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if maxY > minY {
			idx = int((y - minY) / (maxY - minY) * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return fmt.Sprintf("%s  [min=%.3g max=%.3g n=%d] %s", s.Name, minY, maxY, len(s.Y), b.String())
}
