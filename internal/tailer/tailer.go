// Package tailer implements the Git Tailer (§3.4, Figure 3): it
// "continuously extracts config changes from the git repository and writes
// them to Zeus for distribution". Each repository in the partitioned
// namespace gets its own tailer (§3.6).
package tailer

import (
	"sort"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/vcs"
	"configerator/internal/zeus"
)

// PollInterval matches the paper's observed ~5 s tailer latency between a
// commit landing in the shared repository and the write reaching Zeus.
const PollInterval = 5 * time.Second

type msgTickTail struct{}

// Tailer is a simnet node that bridges one repository into Zeus.
type Tailer struct {
	id     simnet.NodeID
	net    *simnet.Network
	repo   *vcs.Repository
	client *zeus.Client
	cursor int
	// prefix maps repo paths to Zeus paths, e.g. "/configs/".
	prefix   string
	interval time.Duration
	// processing models the tailer's extraction cost on a large
	// repository — the ~5 s the paper attributes to "the git tailer takes
	// about 5 seconds to fetch config changes" (§6.3).
	processing time.Duration

	// WritesIssued counts Zeus writes submitted.
	WritesIssued int
	// onDelivered, if set, fires when a write commits in Zeus.
	onDelivered func(path string, zxid int64)

	// Obs, when set, records the round-trip of each Zeus write in the
	// "tailer.write_rtt" histogram (nil = no instrumentation).
	Obs *obs.Registry
}

// New creates a tailer node on the network.
func New(net *simnet.Network, id simnet.NodeID, placement simnet.Placement,
	repo *vcs.Repository, members []simnet.NodeID, prefix string) *Tailer {
	t := &Tailer{
		id:       id,
		net:      net,
		repo:     repo,
		client:   zeus.NewClient(id, members),
		prefix:   prefix,
		interval: PollInterval,
	}
	net.AddNode(id, placement, t)
	net.SetTimer(id, t.interval, msgTickTail{})
	return t
}

// SetInterval overrides the poll interval (tests).
func (t *Tailer) SetInterval(d time.Duration) { t.interval = d }

// SetProcessingDelay adds a fixed extraction cost between detecting new
// commits and writing them to Zeus (the paper's ~5 s git-fetch cost on a
// large repository).
func (t *Tailer) SetProcessingDelay(d time.Duration) { t.processing = d }

// OnDelivered registers a callback fired when a tailed write commits in
// Zeus (used by experiments to timestamp propagation).
func (t *Tailer) OnDelivered(fn func(path string, zxid int64)) { t.onDelivered = fn }

// OnRestart implements simnet.Restarter.
func (t *Tailer) OnRestart(ctx *simnet.Context) {
	ctx.SetTimer(t.interval, msgTickTail{})
}

// HandleMessage implements simnet.Handler.
func (t *Tailer) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch msg.(type) {
	case msgTickTail:
		if t.processing > 0 && t.repo.CommitCount() > t.cursor {
			// Extraction takes time on a big repo; issue the writes when
			// it completes.
			t.net.After(t.processing, func() {
				ctx := simnet.MakeContext(t.net, t.id)
				t.poll(&ctx)
			})
		} else {
			t.poll(ctx)
		}
		ctx.SetTimer(t.interval, msgTickTail{})
	default:
		// Zeus client replies and retry timers.
		t.client.HandleMessage(ctx, from, msg)
	}
}

// poll extracts commits past the cursor and writes each changed file to
// Zeus. Deletions propagate as Zeus deletes.
func (t *Tailer) poll(ctx *simnet.Context) {
	commits := t.repo.LogAfter(t.cursor)
	if len(commits) == 0 {
		return
	}
	store := t.repo.Store()
	for _, h := range commits {
		c, _ := store.Commit(h)
		parentTree := vcs.Tree{}
		if !c.Parent.IsZero() {
			pc, _ := store.Commit(c.Parent)
			parentTree, _ = store.Tree(pc.Tree)
		}
		tree, _ := store.Tree(c.Tree)
		// Deterministic order: collect changed paths sorted.
		changed := changedPaths(parentTree, tree)
		for _, p := range changed {
			zpath := t.prefix + p
			issued := ctx.Now()
			done := func(path string) func(zeus.WriteResult) {
				return func(r zeus.WriteResult) {
					t.Obs.Observe("tailer.write_rtt", t.net.Now().Sub(issued))
					if t.onDelivered != nil {
						t.onDelivered(path, r.Zxid)
					}
				}
			}
			if h, ok := tree[p]; ok {
				data, _ := store.Blob(h)
				t.WritesIssued++
				t.client.Write(ctx, zpath, data, done(zpath))
			} else {
				t.WritesIssued++
				t.client.Delete(ctx, zpath, done(zpath))
			}
		}
	}
	t.cursor += len(commits)
}

func changedPaths(old, new vcs.Tree) []string {
	var out []string
	for p, h := range new {
		if old[p] != h {
			out = append(out, p)
		}
	}
	for p := range old {
		if _, ok := new[p]; !ok {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
