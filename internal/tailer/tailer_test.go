package tailer

import (
	"testing"
	"time"

	"configerator/internal/simnet"
	"configerator/internal/vcs"
	"configerator/internal/zeus"
)

func newStack(t *testing.T) (*simnet.Network, *zeus.Ensemble, *vcs.Repository, *Tailer) {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), 7)
	ens := zeus.StartEnsemble(net, 3, []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
	})
	net.RunFor(10 * time.Second)
	repo := vcs.NewRepository("configerator")
	tl := New(net, "tailer-1", simnet.Placement{Region: "us", Cluster: "ctrl"},
		repo, ens.Members, "/configs/")
	return net, ens, repo, tl
}

func TestTailerPropagatesCommit(t *testing.T) {
	net, ens, repo, tl := newStack(t)
	repo.CommitChanges("alice", "add", net.Now(),
		vcs.Change{Path: "feed/ranker.json", Content: []byte(`{"w":1}`)})
	net.RunFor(30 * time.Second)
	if tl.WritesIssued != 1 {
		t.Fatalf("WritesIssued = %d", tl.WritesIssued)
	}
	rec := ens.LeaderServer().Tree().Get("/configs/feed/ranker.json")
	if rec == nil || string(rec.Data) != `{"w":1}` {
		t.Fatalf("zeus record = %v", rec)
	}
}

func TestTailerPropagatesOnlyChangedFiles(t *testing.T) {
	net, _, repo, tl := newStack(t)
	repo.CommitChanges("a", "c1", net.Now(),
		vcs.Change{Path: "a.json", Content: []byte("1")},
		vcs.Change{Path: "b.json", Content: []byte("2")})
	net.RunFor(20 * time.Second)
	if tl.WritesIssued != 2 {
		t.Fatalf("WritesIssued = %d, want 2", tl.WritesIssued)
	}
	// A commit touching only one file issues exactly one more write.
	repo.CommitChanges("a", "c2", net.Now(),
		vcs.Change{Path: "a.json", Content: []byte("1b")})
	net.RunFor(20 * time.Second)
	if tl.WritesIssued != 3 {
		t.Fatalf("WritesIssued = %d, want 3", tl.WritesIssued)
	}
}

func TestTailerPropagatesDeletes(t *testing.T) {
	net, ens, repo, _ := newStack(t)
	repo.CommitChanges("a", "add", net.Now(),
		vcs.Change{Path: "x.json", Content: []byte("1")})
	net.RunFor(20 * time.Second)
	repo.CommitChanges("a", "rm", net.Now(), vcs.Change{Path: "x.json", Delete: true})
	net.RunFor(20 * time.Second)
	if rec := ens.LeaderServer().Tree().Get("/configs/x.json"); rec != nil {
		t.Fatalf("deleted config still in zeus: %v", rec)
	}
}

func TestTailerDeliveryCallbackAndLatency(t *testing.T) {
	net, _, repo, tl := newStack(t)
	var deliveredAt time.Time
	tl.OnDelivered(func(path string, zxid int64) {
		if path == "/configs/lat.json" {
			deliveredAt = net.Now()
		}
	})
	committedAt := net.Now()
	repo.CommitChanges("a", "add", committedAt,
		vcs.Change{Path: "lat.json", Content: []byte("x")})
	net.RunFor(30 * time.Second)
	if deliveredAt.IsZero() {
		t.Fatal("delivery callback never fired")
	}
	lat := deliveredAt.Sub(committedAt)
	// Bounded by poll interval (5s) plus consensus round trips.
	if lat <= 0 || lat > 10*time.Second {
		t.Errorf("repo->zeus latency = %v, want (0, 10s]", lat)
	}
}

func TestTailerSurvivesLeaderFailover(t *testing.T) {
	net, ens, repo, _ := newStack(t)
	repo.CommitChanges("a", "c1", net.Now(), vcs.Change{Path: "a.json", Content: []byte("1")})
	net.RunFor(20 * time.Second)
	first := ens.Leader()
	net.Fail(first)
	repo.CommitChanges("a", "c2", net.Now(), vcs.Change{Path: "b.json", Content: []byte("2")})
	net.RunFor(60 * time.Second)
	leader := ens.LeaderServer()
	if leader == nil {
		t.Fatal("no leader after failover")
	}
	rec := leader.Tree().Get("/configs/b.json")
	if rec == nil || string(rec.Data) != "2" {
		t.Fatalf("write after failover missing: %v", rec)
	}
}
