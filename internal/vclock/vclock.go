// Package vclock provides the clock abstraction used across the repository.
//
// Simulations (the Zeus ensemble, the P2P swarms, the commit pipeline) run
// on a Virtual clock so that experiments with hundreds of thousands of
// simulated servers and multi-day workloads finish in milliseconds of real
// time and are bit-for-bit reproducible. Benchmarks that measure the real
// cost of our own data structures use the Real clock.
package vclock

import (
	"sync/atomic"
	"time"
)

// Clock is the minimal time source dependency taken by every component.
type Clock interface {
	Now() time.Time
}

// Epoch is the arbitrary simulation start time. Using a fixed epoch keeps
// all simulated timestamps deterministic.
var Epoch = time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a manually advanced clock. The discrete-event simulator that
// drives it is single-threaded, but readers may call Now concurrently with
// the simulation loop: the read hot path (proxy snapshot reads from
// application goroutines racing against watch deliveries) observes the
// clock lock-free. Time is therefore kept as an atomic nanosecond offset
// from a fixed base; Advance/AdvanceTo remain single-writer (the simulator
// loop), Now is safe — and allocation-free — from any goroutine.
type Virtual struct {
	base time.Time
	off  atomic.Int64 // nanoseconds since base
}

// NewVirtual returns a virtual clock starting at Epoch.
func NewVirtual() *Virtual {
	return &Virtual{base: Epoch}
}

// NewVirtualAt returns a virtual clock starting at t.
func NewVirtualAt(t time.Time) *Virtual {
	return &Virtual{base: t}
}

// Now reports the current virtual time. Safe for concurrent use.
func (v *Virtual) Now() time.Time { return v.base.Add(time.Duration(v.off.Load())) }

// Advance moves the clock forward by d. It panics on negative d: time in a
// discrete-event simulation never flows backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: Advance with negative duration")
	}
	v.off.Add(int64(d))
}

// AdvanceTo moves the clock to t if t is later than now; earlier times are
// ignored (the event queue may contain events scheduled "now").
func (v *Virtual) AdvanceTo(t time.Time) {
	target := t.Sub(v.base)
	for {
		cur := time.Duration(v.off.Load())
		if target <= cur {
			return
		}
		if v.off.CompareAndSwap(int64(cur), int64(target)) {
			return
		}
	}
}

// Since reports the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Real is the wall clock.
type Real struct{}

// Now reports the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }
