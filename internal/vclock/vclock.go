// Package vclock provides the clock abstraction used across the repository.
//
// Simulations (the Zeus ensemble, the P2P swarms, the commit pipeline) run
// on a Virtual clock so that experiments with hundreds of thousands of
// simulated servers and multi-day workloads finish in milliseconds of real
// time and are bit-for-bit reproducible. Benchmarks that measure the real
// cost of our own data structures use the Real clock.
package vclock

import "time"

// Clock is the minimal time source dependency taken by every component.
type Clock interface {
	Now() time.Time
}

// Epoch is the arbitrary simulation start time. Using a fixed epoch keeps
// all simulated timestamps deterministic.
var Epoch = time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a manually advanced clock. It is not safe for concurrent use;
// the discrete-event simulator is single-threaded by design.
type Virtual struct {
	now time.Time
}

// NewVirtual returns a virtual clock starting at Epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: Epoch}
}

// NewVirtualAt returns a virtual clock starting at t.
func NewVirtualAt(t time.Time) *Virtual {
	return &Virtual{now: t}
}

// Now reports the current virtual time.
func (v *Virtual) Now() time.Time { return v.now }

// Advance moves the clock forward by d. It panics on negative d: time in a
// discrete-event simulation never flows backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: Advance with negative duration")
	}
	v.now = v.now.Add(d)
}

// AdvanceTo moves the clock to t if t is later than now; earlier times are
// ignored (the event queue may contain events scheduled "now").
func (v *Virtual) AdvanceTo(t time.Time) {
	if t.After(v.now) {
		v.now = t
	}
}

// Since reports the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.now.Sub(t) }

// Real is the wall clock.
type Real struct{}

// Now reports the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }
