package vclock

import (
	"testing"
	"time"
)

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	v.Advance(5 * time.Second)
	if got := v.Since(start); got != 5*time.Second {
		t.Errorf("Since = %v, want 5s", got)
	}
}

func TestVirtualAdvanceTo(t *testing.T) {
	v := NewVirtual()
	target := v.Now().Add(time.Minute)
	v.AdvanceTo(target)
	if !v.Now().Equal(target) {
		t.Errorf("Now = %v, want %v", v.Now(), target)
	}
	// Moving backwards is a no-op.
	v.AdvanceTo(target.Add(-time.Hour))
	if !v.Now().Equal(target) {
		t.Errorf("AdvanceTo backwards moved the clock")
	}
}

func TestVirtualNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative Advance")
		}
	}()
	NewVirtual().Advance(-time.Second)
}

func TestNewVirtualAt(t *testing.T) {
	at := time.Date(2015, 10, 4, 0, 0, 0, 0, time.UTC)
	v := NewVirtualAt(at)
	if !v.Now().Equal(at) {
		t.Errorf("Now = %v, want %v", v.Now(), at)
	}
}

func TestRealClock(t *testing.T) {
	var r Real
	before := time.Now()
	got := r.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real.Now out of range")
	}
}
