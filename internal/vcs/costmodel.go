package vcs

import "time"

// CostModel charges virtual time for repository operations the way a real
// git server pays real time. The paper measured (Figure 13, sandbox stress
// test) that Configerator's maximum commit throughput decays from roughly
// 200+ commits/min on a small repository to a few tens per minute at a
// million files, "because the execution time of many git operations
// increases with the number of files in the repository and the depth of the
// git history"; the companion latency curve rises from fractions of a
// second to multiple seconds. The linear model below is calibrated to hit
// those endpoints.
type CostModel struct {
	// CommitBase is the fixed cost of a commit on a tiny repository.
	CommitBase time.Duration
	// PerFile is the marginal commit cost per file at head.
	PerFile time.Duration
	// PerCommitDepth is the marginal cost per 1000 commits of history.
	PerCommitDepth time.Duration
	// UpdateBase is the cost of bringing a stale clone up to date — the
	// "10s of seconds" the paper cites for `git pull` on a large repo.
	UpdateBase time.Duration
	// UpdatePerFile is the marginal update cost per file.
	UpdatePerFile time.Duration
}

// DefaultCostModel is calibrated against Figure 13: ~0.25 s per commit at
// near-zero files (≈240 commits/min) rising to ~6 s at 1,000,000 files
// (≈10 commits/min), and stale-clone updates costing tens of seconds at
// scale.
func DefaultCostModel() CostModel {
	return CostModel{
		CommitBase:     250 * time.Millisecond,
		PerFile:        5750 * time.Nanosecond, // +5.75 s per million files
		PerCommitDepth: 2 * time.Millisecond,   // per 1000 commits of history
		UpdateBase:     2 * time.Second,
		UpdatePerFile:  28 * time.Microsecond, // ~30 s at 1M files
	}
}

// CommitCost returns the time one commit takes on a repository with the
// given file count and history depth.
func (m CostModel) CommitCost(files, historyDepth int) time.Duration {
	return m.CommitBase +
		time.Duration(files)*m.PerFile +
		time.Duration(historyDepth/1000)*m.PerCommitDepth
}

// UpdateCost returns the time a stale working copy takes to update.
func (m CostModel) UpdateCost(files int) time.Duration {
	return m.UpdateBase + time.Duration(files)*m.UpdatePerFile
}

// ThroughputPerMinute converts a per-commit cost into the paper's
// commits/minute axis.
func ThroughputPerMinute(cost time.Duration) float64 {
	if cost <= 0 {
		return 0
	}
	return float64(time.Minute) / float64(cost)
}
