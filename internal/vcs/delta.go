package vcs

import (
	"encoding/binary"
	"errors"
)

// This file is the wire-delta side of the diff machinery: DiffLines (diff.go)
// measures changes the way the paper's Table 2 counts them, while MakeDelta /
// ApplyDelta turn a change into an applicable patch so the distribution plane
// can ship bytes proportional to the edit instead of the config. Config edits
// are overwhelmingly tiny (two-line updates dominate, Table 2), so a
// common-prefix/common-suffix splice captures nearly all of the savings of a
// full edit script at O(n) cost and with a trivially verifiable encoding.

// ErrBadDelta is returned when a delta does not apply to the given base.
var ErrBadDelta = errors.New("vcs: delta does not apply to this base")

// FNV-1a constants (identical to hash/fnv's 64-bit variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashBytes returns the 64-bit FNV-1a content hash used to identify config
// versions on the wire (observers and proxies advertise it; deltas name
// their base and result with it). The loop is inlined rather than going
// through hash/fnv so the read and update hot paths hash without
// allocating — hash/fnv's constructor escapes its state to the heap on
// every call, which at fleet read rates is an allocation per advertised
// hash. TestHashBytesMatchesStdlib pins the two implementations together
// (the hash is on the wire, so it must never drift).
func HashBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return h
}

// MakeDelta encodes new as a splice against old: the bytes old and new share
// at the front and back are referenced by length, and only the differing
// middle of new is carried. Returns nil when the encoding would not be
// strictly smaller than new — the caller should ship the full content.
func MakeDelta(old, new []byte) []byte {
	p := 0
	max := len(old)
	if len(new) < max {
		max = len(new)
	}
	for p < max && old[p] == new[p] {
		p++
	}
	s := 0
	for s < max-p && old[len(old)-1-s] == new[len(new)-1-s] {
		s++
	}
	mid := new[p : len(new)-s]
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(mid))
	buf = binary.AppendUvarint(buf, uint64(p))
	buf = binary.AppendUvarint(buf, uint64(s))
	buf = append(buf, mid...)
	if len(buf) >= len(new) {
		return nil
	}
	return buf
}

// ApplyDelta reconstructs the new content from the base it was made against.
// A delta applied to the wrong base either fails here or produces bytes whose
// HashBytes differs from the advertised result hash — callers must verify.
func ApplyDelta(old, delta []byte) ([]byte, error) {
	p, n1 := binary.Uvarint(delta)
	if n1 <= 0 {
		return nil, ErrBadDelta
	}
	s, n2 := binary.Uvarint(delta[n1:])
	if n2 <= 0 {
		return nil, ErrBadDelta
	}
	mid := delta[n1+n2:]
	if p+s > uint64(len(old)) {
		return nil, ErrBadDelta
	}
	out := make([]byte, 0, int(p)+len(mid)+int(s))
	out = append(out, old[:p]...)
	out = append(out, mid...)
	out = append(out, old[uint64(len(old))-s:]...)
	return out, nil
}
