package vcs

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, old, new string) {
	t.Helper()
	d := MakeDelta([]byte(old), []byte(new))
	if d == nil {
		return // caller would ship full content; nothing to verify
	}
	got, err := ApplyDelta([]byte(old), d)
	if err != nil {
		t.Fatalf("ApplyDelta(%q→%q): %v", old, new, err)
	}
	if string(got) != new {
		t.Fatalf("round trip %q→%q produced %q", old, new, got)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	roundTrip(t, `{"a":1,"b":2,"c":3}`, `{"a":1,"b":7,"c":3}`)
	roundTrip(t, "line1\nline2\nline3\n", "line1\nchanged\nline3\n")
	roundTrip(t, strings.Repeat("x", 4096), strings.Repeat("x", 2048)+"Y"+strings.Repeat("x", 2047))
	roundTrip(t, "abc", "abcdef") // pure append
	roundTrip(t, "abcdef", "abc") // pure truncate
	roundTrip(t, "same", "same")  // identical
}

func TestDeltaSmallEditIsSmall(t *testing.T) {
	old := []byte(strings.Repeat("config line ........................\n", 1000))
	new := bytes.Replace(old, []byte("line ....."), []byte("line FLIP!"), 1)
	d := MakeDelta(old, new)
	if d == nil {
		t.Fatal("small edit produced no delta")
	}
	if len(d) > 64 {
		t.Fatalf("delta for a one-line flip is %d bytes", len(d))
	}
	got, err := ApplyDelta(old, d)
	if err != nil || !bytes.Equal(got, new) {
		t.Fatalf("apply failed: %v", err)
	}
}

func TestDeltaFullRewriteDeclines(t *testing.T) {
	// Completely different content: a splice cannot beat the full bytes.
	if d := MakeDelta([]byte("aaaaaaaa"), []byte("zzzzzzzz")); d != nil {
		t.Fatalf("expected nil delta, got %d bytes", len(d))
	}
	// No base at all: always ship full.
	if d := MakeDelta(nil, []byte("fresh")); d != nil {
		t.Fatal("delta against empty base should decline")
	}
}

func TestDeltaWrongBaseDetected(t *testing.T) {
	old := []byte("prefix MIDDLE suffix")
	new := []byte("prefix CHANGED suffix")
	d := MakeDelta(old, new)
	if d == nil {
		t.Fatal("no delta")
	}
	wrong := []byte("x")
	out, err := ApplyDelta(wrong, d)
	if err == nil && HashBytes(out) == HashBytes(new) {
		t.Fatal("delta applied to wrong base reproduced the new content")
	}
}

func TestDeltaMalformed(t *testing.T) {
	if _, err := ApplyDelta([]byte("abc"), []byte{}); err == nil {
		t.Fatal("empty delta accepted")
	}
	if _, err := ApplyDelta([]byte("abc"), []byte{0xff}); err == nil {
		t.Fatal("truncated varint accepted")
	}
	// prefix+suffix longer than base.
	bad := MakeDelta([]byte("aaaaaaaaaaaaaaaa"), []byte("aaaaaaaaaaaaaaaab"))
	if bad == nil {
		t.Skip("no delta to corrupt")
	}
	if _, err := ApplyDelta([]byte("a"), bad); err == nil {
		t.Fatal("out-of-range splice accepted")
	}
}

func TestQuickDeltaRoundTrip(t *testing.T) {
	err := quick.Check(func(old, new []byte) bool {
		d := MakeDelta(old, new)
		if d == nil {
			return true
		}
		if len(d) >= len(new) {
			return false // must be strictly smaller than full
		}
		got, err := ApplyDelta(old, d)
		return err == nil && bytes.Equal(got, new)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestHashBytes(t *testing.T) {
	if HashBytes([]byte("a")) == HashBytes([]byte("b")) {
		t.Fatal("distinct content hashed equal")
	}
	if HashBytes(nil) != HashBytes([]byte{}) {
		t.Fatal("nil and empty must hash equal")
	}
}
