package vcs

import (
	"bytes"
	"hash/fnv"
)

// LineStat summarises a textual change the way Unix diff and the paper's
// Table 2 count it: adding a line is one line change, deleting a line is
// one line change, and modifying a line is two (one delete plus one add).
type LineStat struct {
	Added   int
	Deleted int
}

// Total is the paper's "number of line changes".
func (s LineStat) Total() int { return s.Added + s.Deleted }

func (s LineStat) add(o LineStat) LineStat {
	return LineStat{Added: s.Added + o.Added, Deleted: s.Deleted + o.Deleted}
}

// splitLines splits on '\n' keeping semantics stable for a trailing newline.
func splitLines(b []byte) [][]byte {
	if len(b) == 0 {
		return nil
	}
	lines := bytes.Split(b, []byte{'\n'})
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	return lines
}

func hashLines(lines [][]byte) []uint64 {
	hs := make([]uint64, len(lines))
	for i, l := range lines {
		h := fnv.New64a()
		h.Write(l)
		hs[i] = h.Sum64()
	}
	return hs
}

// maxDiffLines caps the quadratic LCS; beyond it we fall back to a
// multiset approximation (configs that large are PackageVessel territory
// anyway).
const maxDiffLines = 4000

// DiffLines computes the line-change statistic between two file versions.
func DiffLines(oldContent, newContent []byte) LineStat {
	if bytes.Equal(oldContent, newContent) {
		return LineStat{}
	}
	oldL := hashLines(splitLines(oldContent))
	newL := hashLines(splitLines(newContent))
	if len(oldL) > maxDiffLines || len(newL) > maxDiffLines {
		return multisetDiff(oldL, newL)
	}
	lcs := lcsLength(oldL, newL)
	return LineStat{Added: len(newL) - lcs, Deleted: len(oldL) - lcs}
}

// lcsLength computes the longest-common-subsequence length with the classic
// two-row DP over hashed lines.
func lcsLength(a, b []uint64) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// multisetDiff approximates the line stat by comparing line multisets; it
// ignores reordering, which is fine for the size statistics it feeds.
func multisetDiff(a, b []uint64) LineStat {
	counts := make(map[uint64]int, len(a))
	for _, h := range a {
		counts[h]++
	}
	added := 0
	for _, h := range b {
		if counts[h] > 0 {
			counts[h]--
		} else {
			added++
		}
	}
	deleted := 0
	for _, c := range counts {
		deleted += c
	}
	return LineStat{Added: added, Deleted: deleted}
}

// CommitStat describes a commit relative to its parent.
type CommitStat struct {
	FilesChanged int
	Lines        LineStat
}

// DiffCommits compares the trees of two commits (either may be ZeroHash,
// meaning the empty tree) and returns per-file line stats plus totals.
func (r *Repository) DiffCommits(oldCommit, newCommit Hash) (CommitStat, map[string]LineStat, error) {
	oldTree, err := r.treeOf(oldCommit)
	if err != nil {
		return CommitStat{}, nil, err
	}
	newTree, err := r.treeOf(newCommit)
	if err != nil {
		return CommitStat{}, nil, err
	}
	perFile := make(map[string]LineStat)
	var total CommitStat
	seen := make(map[string]bool)
	for p, oh := range oldTree {
		seen[p] = true
		nh, ok := newTree[p]
		if ok && nh == oh {
			continue
		}
		ob, _ := r.store.Blob(oh)
		var nb []byte
		if ok {
			nb, _ = r.store.Blob(nh)
		}
		st := DiffLines(ob, nb)
		perFile[p] = st
		total.FilesChanged++
		total.Lines = total.Lines.add(st)
	}
	for p, nh := range newTree {
		if seen[p] {
			continue
		}
		nb, _ := r.store.Blob(nh)
		st := DiffLines(nil, nb)
		perFile[p] = st
		total.FilesChanged++
		total.Lines = total.Lines.add(st)
	}
	return total, perFile, nil
}

func (r *Repository) treeOf(commit Hash) (Tree, error) {
	if commit.IsZero() {
		return Tree{}, nil
	}
	c, ok := r.store.Commit(commit)
	if !ok {
		return nil, ErrNotFound
	}
	t, _ := r.store.Tree(c.Tree)
	return t, nil
}

// StatCommit returns the stat of a commit against its parent.
func (r *Repository) StatCommit(commit Hash) (CommitStat, error) {
	c, ok := r.store.Commit(commit)
	if !ok {
		return CommitStat{}, ErrNotFound
	}
	stat, _, err := r.DiffCommits(c.Parent, commit)
	return stat, err
}
