package vcs

import (
	"hash/fnv"
	"testing"
)

// TestHashBytesMatchesStdlib pins the inlined FNV-1a loop to hash/fnv:
// HashBytes is on the wire (delta base/result hashes, fetch adverts), so
// the zero-alloc rewrite must produce bit-identical values forever.
func TestHashBytesMatchesStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte(`{"enabled":true,"batch":64}`),
		[]byte("/configs/very/long/path/with/segments.json"),
		make([]byte, 4096), // zeros
	}
	for i := range cases[len(cases)-1] {
		cases[len(cases)-1][i] = byte(i * 7)
	}
	for _, c := range cases {
		h := fnv.New64a()
		h.Write(c)
		if want, got := h.Sum64(), HashBytes(c); want != got {
			t.Errorf("HashBytes(%q) = %#x, stdlib fnv = %#x", c, got, want)
		}
	}
}

// TestHashBytesZeroAlloc is the allocation regression gate: hashing is on
// the read hot path (content-hash memoization) and must not allocate.
func TestHashBytesZeroAlloc(t *testing.T) {
	data := []byte(`{"rev":42,"hosts":["a","b","c"]}`)
	allocs := testing.AllocsPerRun(100, func() {
		if HashBytes(data) == 0 {
			t.Fatal("unexpected zero hash")
		}
	})
	if allocs != 0 {
		t.Errorf("HashBytes allocates %.1f per run, want 0", allocs)
	}
}
