package vcs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RepoSet serves a partitioned global namespace over multiple repositories
// (§3.6): files under different path prefixes (e.g. "feed/" and "tao/") are
// served by different repositories that accept commits concurrently. A
// metadata table maps prefixes to repositories; migrating files to a new
// repository only requires updating that table.
type RepoSet struct {
	// routes maps a path prefix (without trailing slash) to a repository.
	routes map[string]*Repository
	// defaultRepo receives paths that match no prefix.
	defaultRepo *Repository
	// ordered prefixes, longest first, for longest-prefix matching.
	prefixes []string
}

// NewRepoSet returns a set with a default repository for unrouted paths.
func NewRepoSet(defaultName string) *RepoSet {
	return &RepoSet{
		routes:      make(map[string]*Repository),
		defaultRepo: NewRepository(defaultName),
	}
}

// AddRepo creates (or reuses) a repository serving the given path prefix.
// Adding repositories incrementally is the paper's scaling lever for commit
// throughput.
func (s *RepoSet) AddRepo(prefix string) *Repository {
	prefix = strings.TrimSuffix(prefix, "/")
	if r, ok := s.routes[prefix]; ok {
		return r
	}
	r := NewRepository(prefix)
	s.routes[prefix] = r
	s.prefixes = append(s.prefixes, prefix)
	sort.Slice(s.prefixes, func(i, j int) bool { return len(s.prefixes[i]) > len(s.prefixes[j]) })
	return r
}

// Route returns the repository responsible for path (longest prefix wins).
func (s *RepoSet) Route(path string) *Repository {
	for _, p := range s.prefixes {
		if strings.HasPrefix(path, p+"/") || path == p {
			return s.routes[p]
		}
	}
	return s.defaultRepo
}

// Repos returns all repositories in the set (default last), for iteration.
func (s *RepoSet) Repos() []*Repository {
	out := make([]*Repository, 0, len(s.prefixes)+1)
	for _, p := range s.prefixes {
		out = append(out, s.routes[p])
	}
	return append(out, s.defaultRepo)
}

// ReadFile reads a path through the routing table.
func (s *RepoSet) ReadFile(path string) ([]byte, error) {
	return s.Route(path).ReadFile(path)
}

// SplitDiff partitions a diff's changes by owning repository. Cross-repo
// diffs are legal (cross-repository dependency is supported); each shard
// lands independently in its owner, mirroring the per-repository landing
// strips of §3.6.
func (s *RepoSet) SplitDiff(d *Diff) map[*Repository]*Diff {
	out := make(map[*Repository]*Diff)
	for _, c := range d.Changes {
		repo := s.Route(c.Path)
		shard, ok := out[repo]
		if !ok {
			shard = &Diff{Base: repo.Head(), Author: d.Author, Message: d.Message}
			out[repo] = shard
		}
		shard.Changes = append(shard.Changes, c)
	}
	return out
}

// CommitChanges lands a (possibly cross-repo) set of changes, one commit
// per owning repository.
func (s *RepoSet) CommitChanges(author, message string, now time.Time, changes ...Change) (map[*Repository]Hash, error) {
	shards := s.SplitDiff(&Diff{Author: author, Message: message, Changes: changes})
	out := make(map[*Repository]Hash, len(shards))
	for repo, shard := range shards {
		h, err := repo.Land(shard, now)
		if err != nil {
			return out, fmt.Errorf("vcs: landing in %s: %w", repo.Name, err)
		}
		out[repo] = h
	}
	return out, nil
}

// TotalFiles reports the file count across all repositories.
func (s *RepoSet) TotalFiles() int {
	n := 0
	for _, r := range s.Repos() {
		n += r.FileCount()
	}
	return n
}

// TotalCommits reports the commit count across all repositories.
func (s *RepoSet) TotalCommits() int {
	n := 0
	for _, r := range s.Repos() {
		n += r.CommitCount()
	}
	return n
}
