// Package vcs implements the version-control substrate that Configerator
// stores config source and compiled JSON in (§3.1 uses git).
//
// It is a content-addressed object store in the git mold: blobs hold file
// contents, trees map paths to blobs, and commits chain trees with parents,
// authors and timestamps. On top of that it provides working copies with
// git's push semantics (a push is rejected whenever the local clone is out
// of date, even if the changed files are disjoint — the exact behaviour
// that motivates the paper's landing strip, §3.6), line-level diffs for the
// update-size statistics (Table 2), a calibrated cost model that reproduces
// git's slowdown on large repositories (Figure 13), and a multi-repository
// set serving a partitioned global namespace (§3.6).
package vcs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"time"
)

// Hash is a SHA-256 content address.
type Hash [32]byte

// ZeroHash is the absent-object sentinel (e.g. the parent of a root commit).
var ZeroHash Hash

// String renders the abbreviated hex form.
func (h Hash) String() string { return hex.EncodeToString(h[:8]) }

// IsZero reports whether h is the sentinel.
func (h Hash) IsZero() bool { return h == ZeroHash }

func hashBlob(data []byte) Hash {
	s := sha256.New()
	s.Write([]byte("blob "))
	var lenbuf [8]byte
	binary.BigEndian.PutUint64(lenbuf[:], uint64(len(data)))
	s.Write(lenbuf[:])
	s.Write(data)
	var h Hash
	copy(h[:], s.Sum(nil))
	return h
}

// Tree is an immutable snapshot: path → blob hash. Paths use "/" separators
// and a flat namespace (the prefix structure is what the multi-repo routing
// partitions on).
type Tree map[string]Hash

func (t Tree) hash() Hash {
	paths := make([]string, 0, len(t))
	for p := range t {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	s := sha256.New()
	s.Write([]byte("tree "))
	for _, p := range paths {
		fmt.Fprintf(s, "%s\x00", p)
		h := t[p]
		s.Write(h[:])
	}
	var h Hash
	copy(h[:], s.Sum(nil))
	return h
}

func (t Tree) clone() Tree {
	c := make(Tree, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Commit is one node of the history DAG.
type Commit struct {
	Parent  Hash // ZeroHash for the root commit
	Tree    Hash
	Author  string
	Time    time.Time
	Message string
}

func (c *Commit) hash() Hash {
	s := sha256.New()
	fmt.Fprintf(s, "commit %x %x %s %d %s", c.Parent, c.Tree, c.Author, c.Time.UnixNano(), c.Message)
	var h Hash
	copy(h[:], s.Sum(nil))
	return h
}

// Store is the content-addressed object database shared by a repository and
// all of its working copies.
type Store struct {
	blobs   map[Hash][]byte
	trees   map[Hash]Tree
	commits map[Hash]*Commit
}

// NewStore returns an empty object database.
func NewStore() *Store {
	return &Store{
		blobs:   make(map[Hash][]byte),
		trees:   make(map[Hash]Tree),
		commits: make(map[Hash]*Commit),
	}
}

// PutBlob interns data and returns its address.
func (s *Store) PutBlob(data []byte) Hash {
	h := hashBlob(data)
	if _, ok := s.blobs[h]; !ok {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.blobs[h] = cp
	}
	return h
}

// Blob returns the contents at h. The second result reports existence.
func (s *Store) Blob(h Hash) ([]byte, bool) {
	b, ok := s.blobs[h]
	return b, ok
}

// PutTree interns a tree snapshot.
func (s *Store) PutTree(t Tree) Hash {
	h := t.hash()
	if _, ok := s.trees[h]; !ok {
		s.trees[h] = t.clone()
	}
	return h
}

// Tree returns the tree at h.
func (s *Store) Tree(h Hash) (Tree, bool) {
	t, ok := s.trees[h]
	return t, ok
}

// PutCommit interns a commit.
func (s *Store) PutCommit(c *Commit) Hash {
	h := c.hash()
	if _, ok := s.commits[h]; !ok {
		cp := *c
		s.commits[h] = &cp
	}
	return h
}

// Commit returns the commit at h.
func (s *Store) Commit(h Hash) (*Commit, bool) {
	c, ok := s.commits[h]
	return c, ok
}

// Objects reports the number of stored objects of each kind.
func (s *Store) Objects() (blobs, trees, commits int) {
	return len(s.blobs), len(s.trees), len(s.commits)
}
