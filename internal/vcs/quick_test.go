package vcs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestQuickContentAddressing(t *testing.T) {
	s := NewStore()
	err := quick.Check(func(a, b []byte) bool {
		ha1 := s.PutBlob(a)
		ha2 := s.PutBlob(a)
		hb := s.PutBlob(b)
		if ha1 != ha2 {
			return false // identical content must share an address
		}
		if bytes.Equal(a, b) {
			return ha1 == hb
		}
		return ha1 != hb
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickBlobRoundTrip(t *testing.T) {
	s := NewStore()
	err := quick.Check(func(data []byte) bool {
		h := s.PutBlob(data)
		got, ok := s.Blob(h)
		return ok && bytes.Equal(got, data)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickDiffLinesSelfIsZero(t *testing.T) {
	err := quick.Check(func(content []byte) bool {
		return DiffLines(content, content).Total() == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickDiffLinesAntisymmetric(t *testing.T) {
	// Swapping old and new swaps added and deleted counts.
	err := quick.Check(func(a, b []byte) bool {
		ab := DiffLines(a, b)
		ba := DiffLines(b, a)
		return ab.Added == ba.Deleted && ab.Deleted == ba.Added
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickDiffLinesBounded(t *testing.T) {
	// Added is bounded by the new line count, Deleted by the old.
	err := quick.Check(func(a, b []byte) bool {
		st := DiffLines(a, b)
		return st.Added >= 0 && st.Deleted >= 0 &&
			st.Added <= len(splitLines(b)) && st.Deleted <= len(splitLines(a))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickTreeHashOrderIndependent(t *testing.T) {
	s := NewStore()
	err := quick.Check(func(names []string, contents [][]byte) bool {
		// Deduplicate names: a map keeps one entry per path, so duplicate
		// names with different contents would make insertion order
		// meaningful and the property vacuous.
		seen := make(map[string]bool)
		var paths []string
		var blobs [][]byte
		n := len(names)
		if len(contents) < n {
			n = len(contents)
		}
		for i := 0; i < n; i++ {
			if !seen[names[i]] {
				seen[names[i]] = true
				paths = append(paths, names[i])
				blobs = append(blobs, contents[i])
			}
		}
		t1 := Tree{}
		t2 := Tree{}
		for i := 0; i < len(paths); i++ {
			t1[paths[i]] = s.PutBlob(blobs[i])
		}
		for i := len(paths) - 1; i >= 0; i-- {
			t2[paths[i]] = s.PutBlob(blobs[i])
		}
		return s.PutTree(t1) == s.PutTree(t2)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickCommitCostMonotone(t *testing.T) {
	m := DefaultCostModel()
	err := quick.Check(func(a, b uint32) bool {
		fa, fb := int(a%2_000_000), int(b%2_000_000)
		if fa > fb {
			fa, fb = fb, fa
		}
		return m.CommitCost(fa, 0) <= m.CommitCost(fb, 0)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
