package vcs

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Errors returned by repository operations.
var (
	ErrOutOfDate = errors.New("vcs: working copy out of date; update before pushing")
	ErrConflict  = errors.New("vcs: true conflict: same file changed concurrently")
	ErrNotFound  = errors.New("vcs: object not found")
)

// Repository is a single shared repository: one head per branch ("master"
// only — Configerator's flow commits everything to master) plus the object
// store. Like a real git server it accepts a push only when the pusher's
// base equals the current head.
type Repository struct {
	Name  string
	store *Store
	head  Hash
	// commit log in order, for tailing (§3.4 "Git Tailer").
	log []Hash
	// syntheticFiles inflates FileCount for cost-model experiments that
	// need paper-scale repositories (hundreds of thousands of files)
	// without materializing them (Figures 13/14).
	syntheticFiles int
}

// SetSyntheticFileCount pretends n extra files exist at head. It affects
// only FileCount (and therefore the cost model) — reads and commits see
// the real tree. Simulation scaffolding for the throughput experiments.
func (r *Repository) SetSyntheticFileCount(n int) { r.syntheticFiles = n }

// NewRepository returns an empty repository.
func NewRepository(name string) *Repository {
	return &Repository{Name: name, store: NewStore()}
}

// Store exposes the object database (shared with working copies).
func (r *Repository) Store() *Store { return r.store }

// Head returns the current head commit hash (ZeroHash when empty).
func (r *Repository) Head() Hash { return r.head }

// CommitCount reports the length of the history.
func (r *Repository) CommitCount() int { return len(r.log) }

// Log returns the commit hashes in commit order (oldest first).
func (r *Repository) Log() []Hash {
	out := make([]Hash, len(r.log))
	copy(out, r.log)
	return out
}

// LogAfter returns commits made strictly after index n in commit order;
// this is the tailer's cursor interface.
func (r *Repository) LogAfter(n int) []Hash {
	if n < 0 {
		n = 0
	}
	if n >= len(r.log) {
		return nil
	}
	out := make([]Hash, len(r.log)-n)
	copy(out, r.log[n:])
	return out
}

// HeadTree returns the tree at head (empty tree when the repo is empty).
func (r *Repository) HeadTree() Tree {
	if r.head.IsZero() {
		return Tree{}
	}
	c, _ := r.store.Commit(r.head)
	t, _ := r.store.Tree(c.Tree)
	return t
}

// FileCount reports the number of files at head — the x-axis of Figure 13.
func (r *Repository) FileCount() int { return len(r.HeadTree()) + r.syntheticFiles }

// ReadFile returns the contents of path at head.
func (r *Repository) ReadFile(path string) ([]byte, error) {
	t := r.HeadTree()
	h, ok := t[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	b, _ := r.store.Blob(h)
	return b, nil
}

// ReadFileAt returns the contents of path at the given commit.
func (r *Repository) ReadFileAt(commit Hash, path string) ([]byte, error) {
	c, ok := r.store.Commit(commit)
	if !ok {
		return nil, fmt.Errorf("%w: commit %s", ErrNotFound, commit)
	}
	t, _ := r.store.Tree(c.Tree)
	h, ok := t[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s@%s", ErrNotFound, path, commit)
	}
	b, _ := r.store.Blob(h)
	return b, nil
}

// Paths lists all file paths at head, sorted.
func (r *Repository) Paths() []string {
	t := r.HeadTree()
	ps := make([]string, 0, len(t))
	for p := range t {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

// Change is one staged file operation within a Diff.
type Change struct {
	Path    string
	Content []byte // nil means delete
	Delete  bool
}

// Diff is a proposed change set: the base the author observed plus the file
// operations. It is the unit the landing strip serializes (§3.6).
type Diff struct {
	Base    Hash
	Author  string
	Message string
	Changes []Change
}

// Touches reports the set of paths the diff modifies.
func (d *Diff) Touches() map[string]bool {
	m := make(map[string]bool, len(d.Changes))
	for _, c := range d.Changes {
		m[c.Path] = true
	}
	return m
}

// apply builds the new tree from base tree + changes.
func (r *Repository) applyChanges(base Tree, changes []Change) Tree {
	t := base.clone()
	for _, c := range changes {
		if c.Delete {
			delete(t, c.Path)
		} else {
			t[c.Path] = r.store.PutBlob(c.Content)
		}
	}
	return t
}

// Push applies a diff with strict git semantics: the diff's base must be
// the current head, otherwise ErrOutOfDate is returned and the committer
// must update and retry. This models the contention the paper describes:
// "even if diff X and diff Y change different files, git considers the
// engineer's local repository clone outdated".
func (r *Repository) Push(d *Diff, now time.Time) (Hash, error) {
	if d.Base != r.head {
		return ZeroHash, ErrOutOfDate
	}
	return r.commit(d, now)
}

// Land applies a diff on behalf of a committer without requiring the base
// to be the head — the landing strip's privilege. It fails only on a true
// conflict: some file touched by the diff changed between the diff's base
// and the current head.
func (r *Repository) Land(d *Diff, now time.Time) (Hash, error) {
	if d.Base != r.head {
		baseTree := Tree{}
		if !d.Base.IsZero() {
			c, ok := r.store.Commit(d.Base)
			if !ok {
				return ZeroHash, fmt.Errorf("%w: base %s", ErrNotFound, d.Base)
			}
			baseTree, _ = r.store.Tree(c.Tree)
		}
		headTree := r.HeadTree()
		for p := range d.Touches() {
			if baseTree[p] != headTree[p] {
				return ZeroHash, fmt.Errorf("%w: %s", ErrConflict, p)
			}
		}
	}
	return r.commit(d, now)
}

func (r *Repository) commit(d *Diff, now time.Time) (Hash, error) {
	newTree := r.applyChanges(r.HeadTree(), d.Changes)
	treeHash := r.store.PutTree(newTree)
	c := &Commit{Parent: r.head, Tree: treeHash, Author: d.Author, Time: now, Message: d.Message}
	h := r.store.PutCommit(c)
	r.head = h
	r.log = append(r.log, h)
	return h, nil
}

// CommitChanges is a convenience for tests and generators: stage changes on
// top of the current head and land them directly.
func (r *Repository) CommitChanges(author, message string, now time.Time, changes ...Change) Hash {
	h, err := r.Land(&Diff{Base: r.head, Author: author, Message: message, Changes: changes}, now)
	if err != nil {
		panic("vcs: CommitChanges on own head cannot conflict: " + err.Error())
	}
	return h
}

// WorkingCopy is an engineer's local clone: a base commit plus staged edits.
type WorkingCopy struct {
	repo    *Repository
	Base    Hash
	Author  string
	staged  map[string]Change
	ordered []string
}

// Clone returns a working copy at the current head.
func (r *Repository) Clone(author string) *WorkingCopy {
	return &WorkingCopy{repo: r, Base: r.head, Author: author, staged: make(map[string]Change)}
}

// Write stages new contents for path.
func (w *WorkingCopy) Write(path string, content []byte) {
	if _, ok := w.staged[path]; !ok {
		w.ordered = append(w.ordered, path)
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	w.staged[path] = Change{Path: path, Content: cp}
}

// Delete stages removal of path.
func (w *WorkingCopy) Delete(path string) {
	if _, ok := w.staged[path]; !ok {
		w.ordered = append(w.ordered, path)
	}
	w.staged[path] = Change{Path: path, Delete: true}
}

// Read returns the working-copy view of path: staged content if any,
// otherwise the content at the base commit.
func (w *WorkingCopy) Read(path string) ([]byte, error) {
	if c, ok := w.staged[path]; ok {
		if c.Delete {
			return nil, fmt.Errorf("%w: %s (deleted)", ErrNotFound, path)
		}
		return c.Content, nil
	}
	if w.Base.IsZero() {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return w.repo.ReadFileAt(w.Base, path)
}

// Dirty reports whether any edits are staged.
func (w *WorkingCopy) Dirty() bool { return len(w.staged) > 0 }

// Diff packages the staged edits as a pushable diff.
func (w *WorkingCopy) Diff(message string) *Diff {
	d := &Diff{Base: w.Base, Author: w.Author, Message: message}
	for _, p := range w.ordered {
		d.Changes = append(d.Changes, w.staged[p])
	}
	return d
}

// UpToDate reports whether the base is the repository head.
func (w *WorkingCopy) UpToDate() bool { return w.Base == w.repo.head }

// Update fast-forwards the base to the repository head, keeping staged
// edits. It returns ErrConflict if a staged file also changed upstream.
func (w *WorkingCopy) Update() error {
	if w.UpToDate() {
		return nil
	}
	baseTree := Tree{}
	if !w.Base.IsZero() {
		c, _ := w.repo.store.Commit(w.Base)
		baseTree, _ = w.repo.store.Tree(c.Tree)
	}
	headTree := w.repo.HeadTree()
	for p := range w.staged {
		if baseTree[p] != headTree[p] {
			return fmt.Errorf("%w: %s", ErrConflict, p)
		}
	}
	w.Base = w.repo.head
	return nil
}

// Push commits the staged edits, with git's strict base==head requirement.
// On success the working copy advances to the new head and is clean.
func (w *WorkingCopy) Push(message string, now time.Time) (Hash, error) {
	h, err := w.repo.Push(w.Diff(message), now)
	if err != nil {
		return ZeroHash, err
	}
	w.Base = h
	w.staged = make(map[string]Change)
	w.ordered = nil
	return h, nil
}
