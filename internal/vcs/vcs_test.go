package vcs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"configerator/internal/vclock"
)

var t0 = vclock.Epoch

func TestCommitAndRead(t *testing.T) {
	r := NewRepository("test")
	r.CommitChanges("alice", "add a", t0, Change{Path: "a.cconf", Content: []byte("x=1\n")})
	got, err := r.ReadFile("a.cconf")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "x=1\n" {
		t.Errorf("ReadFile = %q", got)
	}
	if r.FileCount() != 1 || r.CommitCount() != 1 {
		t.Errorf("FileCount=%d CommitCount=%d", r.FileCount(), r.CommitCount())
	}
}

func TestReadMissing(t *testing.T) {
	r := NewRepository("test")
	if _, err := r.ReadFile("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestDeleteFile(t *testing.T) {
	r := NewRepository("test")
	r.CommitChanges("a", "add", t0, Change{Path: "f", Content: []byte("1")})
	r.CommitChanges("a", "rm", t0, Change{Path: "f", Delete: true})
	if _, err := r.ReadFile("f"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted file still readable: %v", err)
	}
	if r.FileCount() != 0 {
		t.Errorf("FileCount = %d", r.FileCount())
	}
}

func TestHistoryAndReadAt(t *testing.T) {
	r := NewRepository("test")
	h1 := r.CommitChanges("a", "v1", t0, Change{Path: "f", Content: []byte("v1")})
	h2 := r.CommitChanges("a", "v2", t0.Add(time.Hour), Change{Path: "f", Content: []byte("v2")})
	b1, err := r.ReadFileAt(h1, "f")
	if err != nil || string(b1) != "v1" {
		t.Errorf("ReadFileAt h1 = %q, %v", b1, err)
	}
	b2, _ := r.ReadFileAt(h2, "f")
	if string(b2) != "v2" {
		t.Errorf("ReadFileAt h2 = %q", b2)
	}
	log := r.Log()
	if len(log) != 2 || log[0] != h1 || log[1] != h2 {
		t.Errorf("Log = %v", log)
	}
	if got := r.LogAfter(1); len(got) != 1 || got[0] != h2 {
		t.Errorf("LogAfter(1) = %v", got)
	}
}

func TestContentAddressing(t *testing.T) {
	s := NewStore()
	h1 := s.PutBlob([]byte("same"))
	h2 := s.PutBlob([]byte("same"))
	if h1 != h2 {
		t.Error("identical blobs must share an address")
	}
	h3 := s.PutBlob([]byte("different"))
	if h1 == h3 {
		t.Error("different blobs must not collide")
	}
	blobs, _, _ := s.Objects()
	if blobs != 2 {
		t.Errorf("blobs = %d, want 2 (deduplicated)", blobs)
	}
}

func TestPushRequiresUpToDate(t *testing.T) {
	r := NewRepository("test")
	wcA := r.Clone("alice")
	wcB := r.Clone("bob")
	wcA.Write("a.cconf", []byte("a"))
	wcB.Write("b.cconf", []byte("b")) // disjoint file!
	if _, err := wcA.Push("diff A", t0); err != nil {
		t.Fatal(err)
	}
	// Even though bob touched a different file, git rejects the push.
	if _, err := wcB.Push("diff B", t0); !errors.Is(err, ErrOutOfDate) {
		t.Fatalf("stale push err = %v, want ErrOutOfDate", err)
	}
	if err := wcB.Update(); err != nil {
		t.Fatal(err)
	}
	if _, err := wcB.Push("diff B", t0); err != nil {
		t.Fatal(err)
	}
	if r.CommitCount() != 2 {
		t.Errorf("CommitCount = %d", r.CommitCount())
	}
}

func TestUpdateConflict(t *testing.T) {
	r := NewRepository("test")
	r.CommitChanges("root", "seed", t0, Change{Path: "f", Content: []byte("v0")})
	wc := r.Clone("alice")
	wc.Write("f", []byte("alice's v1"))
	r.CommitChanges("bob", "race", t0, Change{Path: "f", Content: []byte("bob's v1")})
	if err := wc.Update(); !errors.Is(err, ErrConflict) {
		t.Fatalf("Update err = %v, want ErrConflict", err)
	}
}

func TestLandSkipsRebaseUnlessConflict(t *testing.T) {
	r := NewRepository("test")
	wc := r.Clone("alice")
	wc.Write("feed/x", []byte("x"))
	d := wc.Diff("add x")
	// Another engineer lands first.
	r.CommitChanges("bob", "add y", t0, Change{Path: "tao/y", Content: []byte("y")})
	// Landing strip can still land alice's stale-based diff: disjoint files.
	if _, err := r.Land(d, t0); err != nil {
		t.Fatalf("Land = %v", err)
	}
	if r.FileCount() != 2 {
		t.Errorf("FileCount = %d, want 2", r.FileCount())
	}
}

func TestLandTrueConflict(t *testing.T) {
	r := NewRepository("test")
	r.CommitChanges("root", "seed", t0, Change{Path: "f", Content: []byte("v0")})
	wc := r.Clone("alice")
	wc.Write("f", []byte("alice"))
	d := wc.Diff("alice's change")
	r.CommitChanges("bob", "race", t0, Change{Path: "f", Content: []byte("bob")})
	if _, err := r.Land(d, t0); !errors.Is(err, ErrConflict) {
		t.Fatalf("Land err = %v, want ErrConflict", err)
	}
}

func TestWorkingCopyRead(t *testing.T) {
	r := NewRepository("test")
	r.CommitChanges("root", "seed", t0, Change{Path: "f", Content: []byte("base")})
	wc := r.Clone("alice")
	if b, _ := wc.Read("f"); string(b) != "base" {
		t.Errorf("Read = %q", b)
	}
	wc.Write("f", []byte("staged"))
	if b, _ := wc.Read("f"); string(b) != "staged" {
		t.Errorf("Read staged = %q", b)
	}
	wc.Delete("f")
	if _, err := wc.Read("f"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read deleted err = %v", err)
	}
	if !wc.Dirty() {
		t.Error("Dirty should be true")
	}
}

func TestDiffLinesModify(t *testing.T) {
	oldC := []byte("a\nb\nc\n")
	newC := []byte("a\nB\nc\n")
	st := DiffLines(oldC, newC)
	// Modifying one line = 1 delete + 1 add = 2 line changes (paper Table 2).
	if st.Total() != 2 || st.Added != 1 || st.Deleted != 1 {
		t.Errorf("DiffLines = %+v", st)
	}
}

func TestDiffLinesAddDelete(t *testing.T) {
	if st := DiffLines([]byte("a\n"), []byte("a\nb\n")); st.Added != 1 || st.Deleted != 0 {
		t.Errorf("add: %+v", st)
	}
	if st := DiffLines([]byte("a\nb\n"), []byte("b\n")); st.Added != 0 || st.Deleted != 1 {
		t.Errorf("delete: %+v", st)
	}
	if st := DiffLines([]byte("same\n"), []byte("same\n")); st.Total() != 0 {
		t.Errorf("identical: %+v", st)
	}
	if st := DiffLines(nil, []byte("a\nb\nc\n")); st.Added != 3 {
		t.Errorf("create: %+v", st)
	}
	if st := DiffLines([]byte("a\nb\nc\n"), nil); st.Deleted != 3 {
		t.Errorf("remove: %+v", st)
	}
}

func TestDiffLinesLargeFallback(t *testing.T) {
	var oldB, newB bytes.Buffer
	for i := 0; i < maxDiffLines+100; i++ {
		oldB.WriteString("line\n")
		newB.WriteString("line\n")
	}
	newB.WriteString("extra\n")
	st := DiffLines(oldB.Bytes(), newB.Bytes())
	if st.Added != 1 || st.Deleted != 0 {
		t.Errorf("large-file diff = %+v", st)
	}
}

func TestStatCommit(t *testing.T) {
	r := NewRepository("test")
	r.CommitChanges("a", "v1", t0, Change{Path: "f", Content: []byte("a\nb\n")})
	h2 := r.CommitChanges("a", "v2", t0,
		Change{Path: "f", Content: []byte("a\nB\n")},
		Change{Path: "g", Content: []byte("new\n")})
	st, err := r.StatCommit(h2)
	if err != nil {
		t.Fatal(err)
	}
	if st.FilesChanged != 2 {
		t.Errorf("FilesChanged = %d", st.FilesChanged)
	}
	if st.Lines.Total() != 3 { // modify one line (2) + add one line (1)
		t.Errorf("Lines = %+v", st.Lines)
	}
}

func TestDiffCommitsDeletedFile(t *testing.T) {
	r := NewRepository("test")
	h1 := r.CommitChanges("a", "v1", t0, Change{Path: "f", Content: []byte("x\ny\n")})
	h2 := r.CommitChanges("a", "v2", t0, Change{Path: "f", Delete: true})
	stat, perFile, err := r.DiffCommits(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Lines.Deleted != 2 || perFile["f"].Deleted != 2 {
		t.Errorf("stat = %+v perFile = %+v", stat, perFile)
	}
}

func TestCostModelShape(t *testing.T) {
	m := DefaultCostModel()
	small := m.CommitCost(100, 100)
	large := m.CommitCost(1_000_000, 500_000)
	if large <= small {
		t.Errorf("cost must grow with repo size: %v vs %v", small, large)
	}
	// Figure 13 endpoints: ~240 commits/min small, low tens at 1M files.
	tpSmall := ThroughputPerMinute(small)
	tpLarge := ThroughputPerMinute(large)
	if tpSmall < 150 || tpSmall > 300 {
		t.Errorf("small-repo throughput = %.0f/min, want ~240", tpSmall)
	}
	if tpLarge > 15 || tpLarge < 5 {
		t.Errorf("large-repo throughput = %.0f/min, want ~10", tpLarge)
	}
	if m.UpdateCost(1_000_000) < 10*time.Second {
		t.Errorf("stale update at 1M files should cost 10s of seconds, got %v", m.UpdateCost(1_000_000))
	}
}

func TestRepoSetRouting(t *testing.T) {
	s := NewRepoSet("default")
	feed := s.AddRepo("feed")
	tao := s.AddRepo("tao")
	if s.Route("feed/ranker.cconf") != feed {
		t.Error("feed path misrouted")
	}
	if s.Route("tao/topology.cconf") != tao {
		t.Error("tao path misrouted")
	}
	if s.Route("misc/thing.cconf") == feed || s.Route("misc/thing.cconf") == tao {
		t.Error("unrouted path must go to default")
	}
	// Longest prefix wins.
	feedsub := s.AddRepo("feed/models")
	if s.Route("feed/models/big.meta") != feedsub {
		t.Error("longest prefix must win")
	}
	if s.Route("feed/ranker.cconf") != feed {
		t.Error("shorter prefix must still route")
	}
}

func TestRepoSetCrossRepoCommit(t *testing.T) {
	s := NewRepoSet("default")
	s.AddRepo("feed")
	s.AddRepo("tao")
	hashes, err := s.CommitChanges("alice", "cross", t0,
		Change{Path: "feed/a", Content: []byte("1")},
		Change{Path: "tao/b", Content: []byte("2")},
		Change{Path: "other/c", Content: []byte("3")})
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 3 {
		t.Fatalf("expected 3 shard commits, got %d", len(hashes))
	}
	if b, err := s.ReadFile("feed/a"); err != nil || string(b) != "1" {
		t.Errorf("feed/a = %q, %v", b, err)
	}
	if s.TotalFiles() != 3 || s.TotalCommits() != 3 {
		t.Errorf("TotalFiles=%d TotalCommits=%d", s.TotalFiles(), s.TotalCommits())
	}
}

func TestRepoSetConcurrentIndependence(t *testing.T) {
	// Two committers racing in different repos never contend — the whole
	// point of the partitioned namespace.
	s := NewRepoSet("default")
	feed := s.AddRepo("feed")
	tao := s.AddRepo("tao")
	wcF := feed.Clone("alice")
	wcT := tao.Clone("bob")
	wcF.Write("feed/x", []byte("x"))
	wcT.Write("tao/y", []byte("y"))
	if _, err := wcF.Push("fx", t0); err != nil {
		t.Fatal(err)
	}
	if _, err := wcT.Push("ty", t0); err != nil {
		t.Fatal(err) // would be ErrOutOfDate in a single shared repo
	}
}

func TestPushAdvancesWorkingCopy(t *testing.T) {
	r := NewRepository("test")
	wc := r.Clone("alice")
	wc.Write("f", []byte("1"))
	h, err := wc.Push("one", t0)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Base != h || wc.Dirty() {
		t.Error("push must advance and clean the working copy")
	}
	wc.Write("f", []byte("2"))
	if _, err := wc.Push("two", t0); err != nil {
		t.Fatal("sequential pushes from one clone must succeed:", err)
	}
}
