package workload

import (
	"time"

	"configerator/internal/stats"
)

// Analysis functions: each reproduces one of the paper's tables or
// figures from a history. They are measurement code — they would work
// unchanged on a real repository history.

// Fig7Point is one day of Figure 7.
type Fig7Point struct {
	Day      int
	Total    int
	Compiled int
	Raw      int
}

// Fig7ConfigGrowth computes the number of configs in the repository over
// time, split compiled vs raw (Figure 7).
func (h *History) Fig7ConfigGrowth() []Fig7Point {
	points := make([]Fig7Point, h.Days)
	for i := range points {
		points[i].Day = i
	}
	for _, c := range h.Configs {
		day := int(c.Created.Sub(h.Start) / (24 * time.Hour))
		if day < 0 || day >= h.Days {
			continue
		}
		for d := day; d < h.Days; d++ {
			points[d].Total++
			if c.Kind == KindRaw {
				points[d].Raw++
			} else {
				points[d].Compiled++
			}
		}
	}
	return points
}

// Fig8SizeCDFs computes the config-size CDFs (Figure 8): raw and compiled.
func (h *History) Fig8SizeCDFs() (raw, compiled *stats.CDF) {
	raw, compiled = &stats.CDF{}, &stats.CDF{}
	for _, c := range h.Configs {
		if c.Kind == KindRaw {
			raw.Add(float64(c.Size))
		} else {
			compiled.Add(float64(c.Size))
		}
	}
	return raw, compiled
}

// Fig9Freshness computes the CDF of days since each config was last
// modified, measured at the horizon (Figure 9).
func (h *History) Fig9Freshness() *stats.CDF {
	cdf := &stats.CDF{}
	end := h.End()
	for _, c := range h.Configs {
		cdf.Add(end.Sub(c.LastModified()).Hours() / 24)
	}
	return cdf
}

// Fig10AgeAtUpdate computes the CDF of a config's age (days) at each of
// its updates (Figure 10).
func (h *History) Fig10AgeAtUpdate() *stats.CDF {
	cdf := &stats.CDF{}
	for _, c := range h.Configs {
		for _, u := range c.Updates {
			cdf.Add(u.Time.Sub(c.Created).Hours() / 24)
		}
	}
	return cdf
}

// Table1UpdatesPerConfig computes the updates-per-config histograms
// (Table 1; the paper's table counts writes, i.e. creation + updates, so
// "written once" = never updated).
func (h *History) Table1UpdatesPerConfig() (compiled, raw *stats.Histogram) {
	compiled, raw = stats.NewHistogram(), stats.NewHistogram()
	for _, c := range h.Configs {
		writes := 1 + len(c.Updates)
		if c.Kind == KindRaw {
			raw.Observe(writes)
		} else {
			compiled.Observe(writes)
		}
	}
	return compiled, raw
}

// TopUpdateShare reports the share of updates contributed by the top-frac
// most-updated configs of a kind (the §6.2 skew: top 1% of raw configs
// account for 92.8% of raw updates).
func (h *History) TopUpdateShare(kind Kind, frac float64) float64 {
	hist := stats.NewHistogram()
	for _, c := range h.Configs {
		if c.Kind == kind {
			hist.Observe(1 + len(c.Updates))
		}
	}
	return hist.TopShare(frac)
}

// Table2LineChanges computes the line-changes-per-update histogram for a
// kind (Table 2).
func (h *History) Table2LineChanges(kind Kind) *stats.Histogram {
	hist := stats.NewHistogram()
	for _, c := range h.Configs {
		if c.Kind != kind {
			continue
		}
		for _, u := range c.Updates {
			hist.Observe(u.LineChanges)
		}
	}
	return hist
}

// Table3CoAuthors computes the distinct-co-author histogram (Table 3).
func (h *History) Table3CoAuthors(kind Kind) *stats.Histogram {
	hist := stats.NewHistogram()
	for _, c := range h.Configs {
		if c.Kind == kind {
			hist.Observe(c.Authors())
		}
	}
	return hist
}

// AutomatedUpdateFraction reports the fraction of updates to a kind made
// by automation (§6.1's 89% for raw).
func (h *History) AutomatedUpdateFraction(kind Kind) float64 {
	auto, total := 0, 0
	for _, c := range h.Configs {
		if c.Kind != kind {
			continue
		}
		for _, u := range c.Updates {
			total++
			if u.Automated {
				auto++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(auto) / float64(total)
}

// MeanUpdatesPerConfig reports the average update count for a kind (§6.1:
// raw 44, compiled 16 — the model reproduces the ordering and rough ratio,
// not the absolute means, which depend on horizon).
func (h *History) MeanUpdatesPerConfig(kind Kind) float64 {
	total, n := 0, 0
	for _, c := range h.Configs {
		if c.Kind == kind {
			total += len(c.Updates)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
