package workload

import (
	"time"

	"configerator/internal/stats"
	"configerator/internal/vclock"
)

// Commit-timing generation for Figures 11 and 12: daily and hourly commit
// throughput with the weekly/diurnal patterns the paper shows, and the
// automated baseline that keeps Configerator busy on weekends.

// RepoProfile calibrates one repository's commit process.
type RepoProfile struct {
	Name string
	// BaseDaily is the weekday human commit volume at day 0.
	BaseDaily float64
	// GrowthFactor multiplies volume by the end of the horizon (§6.3: the
	// peak daily commit throughput grew 180% in 10 months ⇒ ~2.8x).
	GrowthFactor float64
	// WeekendRatio is weekend volume / weekday volume for HUMAN commits
	// (engineers mostly rest; what keeps Configerator busy on weekends is
	// its automation share).
	WeekendRatio float64
	// AutomatedShare is the fraction of commits from tools, spread evenly
	// across all hours and days (Configerator: 39%, §6.3).
	AutomatedShare float64
}

// ConfigeratorProfile matches Figure 11's config repository: heavy
// automation keeps weekends at ≈33% of the busiest weekday.
func ConfigeratorProfile() RepoProfile {
	return RepoProfile{Name: "configerator", BaseDaily: 1400, GrowthFactor: 2.8,
		WeekendRatio: 0.05, AutomatedShare: 0.36}
}

// WWWProfile is the frontend code repository (weekends ≈10%).
func WWWProfile() RepoProfile {
	return RepoProfile{Name: "www", BaseDaily: 900, GrowthFactor: 1.6,
		WeekendRatio: 0.07, AutomatedShare: 0.05}
}

// FbcodeProfile is the backend code repository (weekends ≈7%).
func FbcodeProfile() RepoProfile {
	return RepoProfile{Name: "fbcode", BaseDaily: 700, GrowthFactor: 1.7,
		WeekendRatio: 0.05, AutomatedShare: 0.03}
}

// CommitSeries is a per-day (or per-hour) commit count series.
type CommitSeries struct {
	Profile RepoProfile
	Start   time.Time
	// PerDay[d] is the commit count on day d.
	PerDay []int
	// PerHour[h] is the commit count in hour h (len = days*24).
	PerHour []int
}

// diurnal is the human time-of-day weight (peaks 10:00-18:00, §6.3).
func diurnal(hour int) float64 {
	switch {
	case hour >= 10 && hour < 18:
		return 1.0
	case hour >= 8 && hour < 10, hour >= 18 && hour < 21:
		return 0.45
	case hour >= 21 || hour < 1:
		return 0.15
	default:
		return 0.06
	}
}

var diurnalTotal = func() float64 {
	t := 0.0
	for h := 0; h < 24; h++ {
		t += diurnal(h)
	}
	return t
}()

// GenerateCommits produces the commit series for one repository profile.
func GenerateCommits(p RepoProfile, days int, seed uint64) *CommitSeries {
	rng := stats.NewRNG(seed)
	s := &CommitSeries{Profile: p, Start: vclock.Epoch,
		PerDay: make([]int, days), PerHour: make([]int, days*24)}
	for d := 0; d < days; d++ {
		growth := 1 + (p.GrowthFactor-1)*float64(d)/float64(days)
		weekday := s.Start.Add(time.Duration(d) * 24 * time.Hour).Weekday()
		dayWeight := 1.0
		if weekday == time.Saturday || weekday == time.Sunday {
			dayWeight = p.WeekendRatio
		}
		human := p.BaseDaily * (1 - p.AutomatedShare) * growth * dayWeight
		auto := p.BaseDaily * p.AutomatedShare * growth
		for h := 0; h < 24; h++ {
			mean := human*diurnal(h)/diurnalTotal + auto/24
			n := gaussianCount(rng, mean)
			s.PerHour[d*24+h] = n
			s.PerDay[d] += n
		}
	}
	return s
}

// gaussianCount draws a non-negative count around mean with ~8% noise.
func gaussianCount(rng *stats.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := int(mean + rng.Norm()*0.08*mean + 0.5)
	if n < 0 {
		n = 0
	}
	return n
}

// WeekendRatio measures the §6.3 statistic — "weekend commit throughput is
// about 33% of the BUSIEST weekday commit throughput" (≈10% for www, ≈7%
// for fbcode). It is computed per calendar week (weekend mean over that
// week's busiest weekday) and averaged, so the long-run growth trend does
// not distort the comparison.
func (s *CommitSeries) WeekendRatio() float64 {
	sum, weeks := 0.0, 0
	for start := 0; start+7 <= len(s.PerDay); start += 7 {
		var wkSum float64
		var wkN int
		busiest := 0.0
		for d := start; d < start+7; d++ {
			day := s.Start.Add(time.Duration(d) * 24 * time.Hour).Weekday()
			if day == time.Saturday || day == time.Sunday {
				wkSum += float64(s.PerDay[d])
				wkN++
			} else if float64(s.PerDay[d]) > busiest {
				busiest = float64(s.PerDay[d])
			}
		}
		if wkN == 0 || busiest == 0 {
			continue
		}
		sum += (wkSum / float64(wkN)) / busiest
		weeks++
	}
	if weeks == 0 {
		return 0
	}
	return sum / float64(weeks)
}

// PeakDaily returns the maximum daily volume in a window of days.
func (s *CommitSeries) PeakDaily(from, to int) int {
	peak := 0
	for d := from; d < to && d < len(s.PerDay); d++ {
		if s.PerDay[d] > peak {
			peak = s.PerDay[d]
		}
	}
	return peak
}

// DailySeries renders Figure 11's series.
func (s *CommitSeries) DailySeries() *stats.Series {
	out := &stats.Series{Name: s.Profile.Name + " commits/day"}
	for d, n := range s.PerDay {
		out.Add(float64(d), float64(n))
	}
	return out
}

// HourlySeries renders Figure 12's series for a window of days.
func (s *CommitSeries) HourlySeries(fromDay, toDay int) *stats.Series {
	out := &stats.Series{Name: s.Profile.Name + " commits/hour"}
	for h := fromDay * 24; h < toDay*24 && h < len(s.PerHour); h++ {
		out.Add(float64(h), float64(s.PerHour[h]))
	}
	return out
}
