// Package workload generates synthetic config-repository histories whose
// statistics match Section 6 of the paper, and computes from them the same
// tables and figures the paper reports.
//
// The paper's evaluation is production telemetry we cannot observe, so —
// per the reproduction ground rules — we build the closest synthetic
// equivalent: a generative model of config creation, updates, authorship,
// sizes, and commit timing, with each knob calibrated against a published
// number (raw-config P50 of 400 bytes, 25.0%/56.9% never-updated, two-line
// changes dominating, 89% of raw updates automated, weekend commit ratios,
// …). The analysis side (fig*.go) is measurement code that would work
// unchanged on a real history; the experiments then check that the
// generated population reproduces the paper's distributions end to end.
package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"configerator/internal/stats"
	"configerator/internal/vclock"
)

// Kind distinguishes the paper's config classes (§6.1).
type Kind int

// Config kinds. Source files generate compiled files; raw configs are
// checked in directly (often by automation).
const (
	KindCompiled Kind = iota
	KindRaw
	KindSource
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCompiled:
		return "compiled"
	case KindRaw:
		return "raw"
	case KindSource:
		return "source"
	}
	return "?"
}

// Update is one config update event.
type Update struct {
	Time        time.Time
	Author      string
	LineChanges int
	Automated   bool
}

// Config is one config file's life.
type Config struct {
	ID      int
	Kind    Kind
	Created time.Time
	Size    int
	Updates []Update
	// authors is the distinct author set (including the creator).
	authors map[string]bool
}

// Authors reports the number of distinct co-authors.
func (c *Config) Authors() int { return len(c.authors) }

// LastModified reports the last update time (creation if never updated).
func (c *Config) LastModified() time.Time {
	if len(c.Updates) == 0 {
		return c.Created
	}
	return c.Updates[len(c.Updates)-1].Time
}

// History is a generated repository history.
type History struct {
	Start   time.Time
	Days    int
	Configs []*Config
}

// End reports the horizon.
func (h *History) End() time.Time { return h.Start.Add(time.Duration(h.Days) * 24 * time.Hour) }

// Params calibrates the generator. Zero fields take defaults matched to
// the paper.
type Params struct {
	Seed uint64
	// Days is the horizon (Fig 7 spans ~1400 days).
	Days int
	// ScalePerDay is the creation rate scale; total configs ≈
	// ScalePerDay·Days·(1+Growth·Days)/2. Pick small values for tests.
	ScalePerDay float64
	// MigrationDay injects the "Gatekeeper migrated to Configerator" bulk
	// import visible as a step in Fig 7 (0 disables).
	MigrationDay int
	// MigrationConfigs is the size of that bulk import.
	MigrationConfigs int
}

// DefaultParams returns the calibrated defaults at a laptop-friendly
// scale (~20k configs over 1400 days).
func DefaultParams(seed uint64) Params {
	return Params{
		Seed:             seed,
		Days:             1400,
		ScalePerDay:      3.0,
		MigrationDay:     900,
		MigrationConfigs: 2500,
	}
}

// Calibration constants (each traces to a §6 number).
const (
	// rawFracStart/End: raw share shrinks as teams adopt config-as-code;
	// 75% of configs are compiled "currently" (§6.1).
	rawFracStart = 0.45
	rawFracEnd   = 0.25
	// neverUpdated fractions, Table 1 first row.
	neverUpdatedCompiled = 0.250
	neverUpdatedRaw      = 0.569
	// automatedRawUpdates: "about 89% of the updates to raw configs are
	// done by automation tools" (§6.1).
	automatedRawUpdates = 0.89
	// automatedCompiledUpdates keeps Configerator's overall automated
	// commit share near the reported 39% (§6.3).
	automatedCompiledUpdates = 0.22
)

// sizeModel fits the §6.1 size quantiles: raw P50=400B/P95=25KB,
// compiled P50=1KB/P95=45KB.
var (
	rawSizes      = stats.LognormalFromQuantiles(0.50, 400, 0.95, 25_000)
	compiledSizes = stats.LognormalFromQuantiles(0.50, 1_000, 0.95, 45_000)
)

// Generate builds a history.
func Generate(p Params) *History {
	if p.Days == 0 {
		p = DefaultParams(p.Seed)
	}
	rng := stats.NewRNG(p.Seed)
	h := &History{Start: vclock.Epoch, Days: p.Days}
	id := 0
	for day := 0; day < p.Days; day++ {
		// Linear rate growth ⇒ convex cumulative curve like Fig 7.
		rate := p.ScalePerDay * (0.2 + 1.8*float64(day)/float64(p.Days))
		n := poisson(rng, rate)
		for i := 0; i < n; i++ {
			id++
			h.Configs = append(h.Configs, genConfig(rng, h, id, day, p.Days, KindSource))
		}
		if day == p.MigrationDay {
			// The Gatekeeper migration imported compiled configs in bulk
			// (the Fig 7 step).
			for i := 0; i < p.MigrationConfigs; i++ {
				id++
				h.Configs = append(h.Configs, genConfig(rng, h, id, day, p.Days, KindCompiled))
			}
		}
	}
	return h
}

func poisson(rng *stats.RNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// Knuth's method; per-day rates here are small.
	threshold := math.Exp(-lambda)
	l := 1.0
	for i := 0; ; i++ {
		l *= rng.Float64()
		if l < threshold {
			return i
		}
		if i > 100000 {
			return i
		}
	}
}

func genConfig(rng *stats.RNG, h *History, id, day, horizon int, forced Kind) *Config {
	kind := forced
	if forced == KindSource { // sentinel: draw the kind
		frac := float64(day) / float64(horizon)
		rawFrac := rawFracStart + (rawFracEnd-rawFracStart)*frac
		kind = KindCompiled
		if rng.Bool(rawFrac) {
			kind = KindRaw
		}
	}
	created := h.Start.Add(time.Duration(day)*24*time.Hour +
		time.Duration(rng.Float64()*24*float64(time.Hour)))
	c := &Config{ID: id, Kind: kind, Created: created, authors: make(map[string]bool)}
	// Size.
	switch kind {
	case KindRaw:
		c.Size = int(rng.Lognormal(rawSizes))
	default:
		c.Size = int(rng.Lognormal(compiledSizes))
	}
	if c.Size < 16 {
		c.Size = 16
	}
	// Each config has one owning automation identity; a tool counts as a
	// single author no matter how many updates it makes (§6.2, Table 3
	// discussion). Half the raw configs are tool-owned end to end.
	tool := "svc:" + toolName(rng)
	creator := pickAuthor(rng, kind, false)
	toolOwned := kind == KindRaw && rng.Bool(0.5)
	if toolOwned {
		creator = tool
	}
	c.authors[creator] = true
	humanAuthors := []string{}
	if !toolOwned {
		humanAuthors = append(humanAuthors, creator)
	}

	// Update count over the config's lifetime: the never-updated mass plus
	// a heavy tail (top 1% of raw configs take 92.8% of raw updates).
	var count int
	switch kind {
	case KindRaw:
		count = updateCount(rng, neverUpdatedRaw, 2.2, 0.75)
	default:
		count = updateCount(rng, neverUpdatedCompiled, 1.6, 1.05)
	}
	remaining := float64(horizon-day) * 24 * float64(time.Hour)
	if remaining <= 0 {
		return c
	}
	// Authorship accrues incrementally: each human update either comes
	// from an existing co-author or (with diminishing probability) from a
	// new engineer, so most configs stay at 1-2 authors (Table 3) while
	// hot shared configs grow long co-author tails (the 727-author
	// sitevar of §6.2).
	pNewBase := 0.30
	if kind == KindRaw {
		pNewBase = 0.40
	}
	for i := 0; i < count; i++ {
		// Update times: a fresh-bias mixture — 55% of updates land early
		// in the config's life (exponential with 90-day mean), the rest
		// uniformly across its lifetime (old configs do get updated, Fig
		// 10).
		var offset float64
		if rng.Bool(0.55) {
			offset = rng.Exp(90 * 24 * float64(time.Hour))
			if offset > remaining {
				offset = rng.Float64() * remaining
			}
		} else {
			offset = rng.Float64() * remaining
		}
		automated := rng.Bool(automatedFrac(kind))
		var author string
		switch {
		case automated:
			author = tool
		case len(humanAuthors) == 0 || rng.Bool(pNewBase/float64(len(humanAuthors))):
			author = pickAuthor(rng, kind, false)
			humanAuthors = append(humanAuthors, author)
		default:
			author = humanAuthors[rng.Intn(len(humanAuthors))]
		}
		u := Update{
			Time:        created.Add(time.Duration(offset)),
			Author:      author,
			LineChanges: lineChanges(rng, kind),
			Automated:   automated,
		}
		c.Updates = append(c.Updates, u)
		c.authors[author] = true
	}
	sortUpdates(c.Updates)
	return c
}

func automatedFrac(k Kind) float64 {
	if k == KindRaw {
		return automatedRawUpdates
	}
	return automatedCompiledUpdates
}

// updateCount draws the lifetime update count: zero with probability
// pZero, else a Pareto-tailed count.
func updateCount(rng *stats.RNG, pZero, xm, alpha float64) int {
	if rng.Bool(pZero) {
		return 0
	}
	n := int(rng.Pareto(xm, alpha)) - 1
	if n < 1 {
		n = 1
	}
	if n > 100_000 {
		n = 100_000
	}
	return n
}

// lineChanges draws a diff size from the Table 2 buckets.
func lineChanges(rng *stats.RNG, k Kind) int {
	u := rng.Float64()
	type bucket struct {
		p      float64
		lo, hi int
	}
	var buckets []bucket
	if k == KindRaw {
		buckets = []bucket{
			{0.023, 1, 1}, {0.486, 2, 2}, {0.325, 3, 4}, {0.042, 5, 6},
			{0.036, 7, 10}, {0.057, 11, 50}, {0.011, 51, 100}, {0.020, 101, 2000},
		}
	} else {
		buckets = []bucket{
			{0.025, 1, 1}, {0.495, 2, 2}, {0.099, 3, 4}, {0.039, 5, 6},
			{0.074, 7, 10}, {0.153, 11, 50}, {0.028, 51, 100}, {0.087, 101, 2000},
		}
	}
	acc := 0.0
	for _, b := range buckets {
		acc += b.p
		if u < acc {
			if b.lo == b.hi {
				return b.lo
			}
			return b.lo + rng.Intn(b.hi-b.lo+1)
		}
	}
	return 2
}

var engineerPool = 4000

func pickAuthor(rng *stats.RNG, k Kind, automated bool) string {
	if automated {
		return "svc:" + toolName(rng)
	}
	return fmt.Sprintf("eng%04d", rng.Intn(engineerPool))
}

var tools = []string{"traffic-shifter", "model-publisher", "topology-mgr", "drain-bot", "loadtest"}

func toolName(rng *stats.RNG) string { return tools[rng.Intn(len(tools))] }

func sortUpdates(us []Update) {
	sort.Slice(us, func(i, j int) bool { return us[i].Time.Before(us[j].Time) })
}
