package workload

import (
	"math"
	"testing"
	"time"
)

// testHistory generates a moderate history once; the calibration tests
// share it.
var testHist = Generate(Params{Seed: 1, Days: 1400, ScalePerDay: 1.2,
	MigrationDay: 900, MigrationConfigs: 800})

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f ± %.3f", name, got, want, tol)
	}
}

func TestGrowthShape(t *testing.T) {
	points := testHist.Fig7ConfigGrowth()
	if len(points) != 1400 {
		t.Fatalf("points = %d", len(points))
	}
	total := points[len(points)-1].Total
	if total < 2000 {
		t.Fatalf("total configs = %d, too few to analyze", total)
	}
	// Convex growth: the second half adds more than the first half.
	mid := points[700].Total
	if mid >= total-mid {
		t.Errorf("growth not accelerating: first half %d, second half %d", mid, total-mid)
	}
	// Migration step: day 900 jumps.
	jump := points[900].Total - points[899].Total
	if jump < 700 {
		t.Errorf("migration step = %d, want >= 700", jump)
	}
	// Compiled share ≈ 75% at the end (§6.1).
	share := float64(points[len(points)-1].Compiled) / float64(total)
	within(t, "compiled share", share, 0.75, 0.06)
}

func TestSizeQuantiles(t *testing.T) {
	raw, compiled := testHist.Fig8SizeCDFs()
	// §6.1: raw P50 400B, compiled P50 1KB; P95 25KB / 45KB.
	p50raw := raw.Quantile(0.5)
	if p50raw < 300 || p50raw > 550 {
		t.Errorf("raw P50 = %v, want ~400", p50raw)
	}
	p50c := compiled.Quantile(0.5)
	if p50c < 800 || p50c > 1300 {
		t.Errorf("compiled P50 = %v, want ~1000", p50c)
	}
	p95raw := raw.Quantile(0.95)
	if p95raw < 17_000 || p95raw > 36_000 {
		t.Errorf("raw P95 = %v, want ~25000", p95raw)
	}
	p95c := compiled.Quantile(0.95)
	if p95c < 32_000 || p95c > 62_000 {
		t.Errorf("compiled P95 = %v, want ~45000", p95c)
	}
}

func TestNeverUpdatedFractions(t *testing.T) {
	compiled, raw := testHist.Table1UpdatesPerConfig()
	// Table 1: 25.0% of compiled and 56.9% of raw written exactly once.
	within(t, "compiled once", compiled.FractionExactly(1), 0.250, 0.04)
	within(t, "raw once", raw.FractionExactly(1), 0.569, 0.05)
}

func TestUpdateSkew(t *testing.T) {
	// §6.2: top 1% of raw configs account for 92.8% of raw updates; top
	// 1% of compiled for 64.5%. Heavy tails converge slowly — accept the
	// qualitative shape: raw much more skewed than compiled, both heavy.
	rawShare := testHist.TopUpdateShare(KindRaw, 0.01)
	compiledShare := testHist.TopUpdateShare(KindCompiled, 0.01)
	if rawShare < 0.55 {
		t.Errorf("raw top-1%% share = %.3f, want heavy (> 0.55)", rawShare)
	}
	if compiledShare < 0.30 {
		t.Errorf("compiled top-1%% share = %.3f, want heavy (> 0.30)", compiledShare)
	}
	if rawShare <= compiledShare {
		t.Errorf("raw skew (%.3f) must exceed compiled skew (%.3f)", rawShare, compiledShare)
	}
}

func TestRawUpdatedMoreOftenThanCompiled(t *testing.T) {
	// §6.1: raw configs get updated ~175% more often than compiled.
	raw := testHist.MeanUpdatesPerConfig(KindRaw)
	compiled := testHist.MeanUpdatesPerConfig(KindCompiled)
	if raw <= compiled {
		t.Errorf("raw mean %.2f must exceed compiled mean %.2f", raw, compiled)
	}
}

func TestAutomationFractions(t *testing.T) {
	// §6.1: 89% of raw updates are automated.
	within(t, "raw automated", testHist.AutomatedUpdateFraction(KindRaw), 0.89, 0.02)
	auto := testHist.AutomatedUpdateFraction(KindCompiled)
	if auto < 0.1 || auto > 0.4 {
		t.Errorf("compiled automated = %.3f", auto)
	}
}

func TestLineChangeDistribution(t *testing.T) {
	h := testHist.Table2LineChanges(KindCompiled)
	// Table 2: 49.5% of compiled updates are two-line changes; 8.7% touch
	// >100 lines.
	within(t, "two-line", h.FractionExactly(2), 0.495, 0.03)
	big := h.FractionInRange(101, 1<<30)
	within(t, ">100 lines", big, 0.087, 0.03)
}

func TestCoAuthorDistribution(t *testing.T) {
	compiled := testHist.Table3CoAuthors(KindCompiled)
	raw := testHist.Table3CoAuthors(KindRaw)
	// Table 3: 49.5% single-author compiled; 70% raw; 79.6% of compiled
	// within 1-2 authors; 91.5% of raw.
	within(t, "compiled 1 author", compiled.FractionExactly(1), 0.495, 0.07)
	within(t, "raw 1 author", raw.FractionExactly(1), 0.70, 0.07)
	if got := compiled.FractionInRange(1, 2); got < 0.70 || got > 0.88 {
		t.Errorf("compiled 1-2 authors = %.3f, want ~0.796", got)
	}
	if got := raw.FractionInRange(1, 2); got < 0.84 || got > 0.97 {
		t.Errorf("raw 1-2 authors = %.3f, want ~0.915", got)
	}
}

func TestFreshnessShape(t *testing.T) {
	f := testHist.Fig9Freshness()
	// Fig 9: 28% modified in the past 90 days; 35% untouched for 300+
	// days. Shapes depend on horizon; assert the qualitative claims: both
	// fresh and dormant mass are significant.
	fresh := f.FractionAtMost(90)
	dormant := 1 - f.FractionAtMost(300)
	if fresh < 0.15 || fresh > 0.55 {
		t.Errorf("fresh fraction = %.3f, want significant (~0.28)", fresh)
	}
	if dormant < 0.15 || dormant > 0.60 {
		t.Errorf("dormant fraction = %.3f, want significant (~0.35)", dormant)
	}
}

func TestAgeAtUpdateShape(t *testing.T) {
	a := testHist.Fig10AgeAtUpdate()
	young := a.FractionAtMost(60)
	old := 1 - a.FractionAtMost(300)
	// Fig 10: 29% of updates hit configs < 60 days old; 29% hit configs
	// older than 300 days. Both ends must carry real mass.
	if young < 0.15 || young > 0.60 {
		t.Errorf("young-update fraction = %.3f (~0.29 expected)", young)
	}
	if old < 0.10 || old > 0.55 {
		t.Errorf("old-update fraction = %.3f (~0.29 expected)", old)
	}
}

func TestUpdatesSortedWithinLifetime(t *testing.T) {
	for _, c := range testHist.Configs[:min(500, len(testHist.Configs))] {
		last := c.Created
		for _, u := range c.Updates {
			if u.Time.Before(c.Created) {
				t.Fatalf("update before creation")
			}
			if u.Time.Before(last) {
				t.Fatalf("updates not sorted")
			}
			last = u.Time
		}
		if c.LastModified().After(testHist.End().Add(24 * time.Hour)) {
			t.Fatalf("update beyond horizon")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Params{Seed: 9, Days: 200, ScalePerDay: 1})
	b := Generate(Params{Seed: 9, Days: 200, ScalePerDay: 1})
	if len(a.Configs) != len(b.Configs) {
		t.Fatal("nondeterministic config count")
	}
	for i := range a.Configs {
		if len(a.Configs[i].Updates) != len(b.Configs[i].Updates) {
			t.Fatal("nondeterministic updates")
		}
	}
}

func TestCommitSeriesWeekendRatios(t *testing.T) {
	days := 280
	cfg := GenerateCommits(ConfigeratorProfile(), days, 1)
	www := GenerateCommits(WWWProfile(), days, 2)
	fbcode := GenerateCommits(FbcodeProfile(), days, 3)
	// §6.3: weekend/weekday ≈ 33% / 10% / 7%.
	within(t, "configerator weekend ratio", cfg.WeekendRatio(), 0.33, 0.1)
	within(t, "www weekend ratio", www.WeekendRatio(), 0.10, 0.05)
	within(t, "fbcode weekend ratio", fbcode.WeekendRatio(), 0.07, 0.05)
	if cfg.WeekendRatio() <= www.WeekendRatio() {
		t.Error("configerator must stay busier on weekends than www")
	}
}

func TestCommitGrowth(t *testing.T) {
	days := 300
	cfg := GenerateCommits(ConfigeratorProfile(), days, 1)
	early := cfg.PeakDaily(0, 30)
	late := cfg.PeakDaily(days-30, days)
	growth := float64(late)/float64(early) - 1
	// §6.3: peak daily throughput grew by 180% over 10 months.
	if growth < 1.2 {
		t.Errorf("peak growth = %.0f%%, want ~180%%", 100*growth)
	}
}

func TestHourlyDiurnalPattern(t *testing.T) {
	cfg := GenerateCommits(ConfigeratorProfile(), 14, 5)
	// Mean 10AM-6PM volume must dominate the small hours, but the small
	// hours stay nonzero (automation).
	var peak, trough float64
	peakN, troughN := 0, 0
	for h, n := range cfg.PerHour {
		hour := h % 24
		if hour >= 10 && hour < 18 {
			peak += float64(n)
			peakN++
		}
		if hour >= 2 && hour < 6 {
			trough += float64(n)
			troughN++
		}
	}
	peak /= float64(peakN)
	trough /= float64(troughN)
	if peak < 3*trough {
		t.Errorf("no diurnal pattern: peak=%.1f trough=%.1f", peak, trough)
	}
	if trough == 0 {
		t.Error("automation should keep nights nonzero")
	}
}

func TestKindString(t *testing.T) {
	if KindCompiled.String() != "compiled" || KindRaw.String() != "raw" || KindSource.String() != "source" {
		t.Error("Kind.String broken")
	}
}
