package zeus

import (
	"fmt"
	"testing"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// TestGroupCommitBatchesWaves checks the tentpole mechanism: a burst of
// concurrent writes coalesces into far fewer proposal waves than writes,
// and every write still commits with sequential versions.
func TestGroupCommitBatchesWaves(t *testing.T) {
	net, e := testDeployment(t, 31)
	reg := obs.New()
	e.SetObs(reg)
	c := addClient(net, e, "tailer")

	const n = 40
	committed := 0
	net.After(0, func() {
		ctx := clientCtx(net, "tailer")
		for i := 0; i < n; i++ {
			c.Write(&ctx, fmt.Sprintf("/burst/cfg-%d", i), []byte("x"), func(WriteResult) { committed++ })
		}
	})
	net.RunFor(30 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
	waves := reg.Counters().Get("zeus.propose.waves")
	if waves <= 0 || waves >= n/2 {
		t.Errorf("proposal waves = %d for %d writes, want coalescing (< %d)", waves, n, n/2)
	}
	if ops := reg.Counters().Get("zeus.propose.ops"); ops < n {
		t.Errorf("proposed ops = %d, want >= %d", ops, n)
	}
	if batches := reg.Counters().Get("zeus.commit.batches"); batches <= 0 || batches >= n/2 {
		t.Errorf("commit batches = %d, want batched commits", batches)
	}
}

// TestGroupCommitOffIsPerWrite pins the baseline mode the distribution
// benchmark compares against: with group commit off, every write is its
// own proposal wave.
func TestGroupCommitOffIsPerWrite(t *testing.T) {
	net, e := testDeployment(t, 32)
	reg := obs.New()
	e.SetObs(reg)
	e.SetGroupCommit(false)
	c := addClient(net, e, "tailer")

	const n = 10
	committed := 0
	net.After(0, func() {
		ctx := clientCtx(net, "tailer")
		for i := 0; i < n; i++ {
			c.Write(&ctx, fmt.Sprintf("/solo/cfg-%d", i), []byte("x"), func(WriteResult) { committed++ })
		}
	})
	net.RunFor(30 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
	if waves := reg.Counters().Get("zeus.propose.waves"); waves != n {
		t.Errorf("proposal waves = %d, want %d (one per write)", waves, n)
	}
}

// TestObserverCoalescesRapidWrites drives the observer's batch-apply path
// directly: one commit batch carrying N rapid writes to the same path must
// produce exactly ONE watch notification, carrying the final version.
func TestObserverCoalescesRapidWrites(t *testing.T) {
	net := simnet.New(simnet.DefaultLatency(), 33)
	reg := obs.New()
	o := NewObserver("obs-1", []simnet.NodeID{"zeus-0"})
	o.Obs = reg
	net.AddNode("obs-1", simnet.Placement{Region: "us", Cluster: "c1"}, o)
	// A member stand-in, so batches arrive from a node the observer knows.
	net.AddNode("zeus-0", simnet.Placement{Region: "us", Cluster: "zk"}, simnet.HandlerFunc(
		func(*simnet.Context, simnet.NodeID, simnet.Message) {}))

	var events []MsgWatchEvent
	watcher := simnet.HandlerFunc(func(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
		if m, ok := msg.(MsgWatchEvent); ok {
			events = append(events, m)
		}
	})
	net.AddNode("proxy-1", simnet.Placement{Region: "us", Cluster: "c1"}, watcher)
	net.After(0, func() {
		ctx := simnet.MakeContext(net, "proxy-1")
		ctx.Send("obs-1", MsgFetch{ReqID: 1, Path: "/hot", Watch: true})
	})
	net.RunFor(2 * time.Second)

	const n = 8
	var updates []Update
	prev := []byte(nil)
	for i := 1; i <= n; i++ {
		data := []byte(fmt.Sprintf("v%d", i))
		updates = append(updates, Update{
			Path: "/hot", Version: int64(i), Zxid: int64(i),
			Payload: MakePayload(prev, data, prev != nil),
		})
		prev = data
	}
	net.After(0, func() {
		ctx := simnet.MakeContext(net, "zeus-0")
		ctx.Send("obs-1", msgObserverBatch{Epoch: 1, Updates: updates})
	})
	net.RunFor(2 * time.Second)

	if len(events) != 1 {
		t.Fatalf("got %d watch events for one batch of %d writes, want exactly 1: %+v",
			len(events), n, events)
	}
	if events[0].Version != n {
		t.Errorf("coalesced event version = %d, want %d", events[0].Version, n)
	}
	rec := o.Tree().Get("/hot")
	if rec == nil || string(rec.Data) != fmt.Sprintf("v%d", n) {
		t.Fatalf("observer tree = %v", rec)
	}
	// The single event must materialize the final content for a watcher
	// holding the pre-batch state (nil here: the path was empty at fetch).
	if got, err := events[0].Payload.Resolve(nil); err != nil || string(got) != fmt.Sprintf("v%d", n) {
		t.Errorf("event payload resolve = %q, %v", got, err)
	}
	if co := reg.Counters().Get("zeus.observer.coalesced"); co != n-1 {
		t.Errorf("coalesced counter = %d, want %d", co, n-1)
	}
}

// TestWatchOrderingAcrossFailover floods one path with writes while the
// leader crashes mid-stream. Watchers may see coalesced subsets, but the
// versions they see must never go backwards, and the final notification
// must carry the final version.
func TestWatchOrderingAcrossFailover(t *testing.T) {
	net, e := testDeployment(t, 34)
	obsv := e.AddObserver("obs-c1", simnet.Placement{Region: "us-west", Cluster: "c1"})
	net.RunFor(5 * time.Second)
	c := addClient(net, e, "tailer")

	var versions []int64
	watcher := simnet.HandlerFunc(func(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
		if m, ok := msg.(MsgWatchEvent); ok {
			versions = append(versions, m.Version)
		}
	})
	net.AddNode("proxy-1", simnet.Placement{Region: "us-west", Cluster: "c1"}, watcher)
	// Keep the watch session alive: observers prune watchers that go
	// silent past watchSessionTTL, so ping like a real proxy would.
	var keepalive func()
	keepalive = func() {
		ctx := simnet.MakeContext(net, "proxy-1")
		ctx.Send("obs-c1", MsgPing{ReqID: 0})
		net.After(2*time.Second, keepalive)
	}
	net.After(0, func() {
		ctx := simnet.MakeContext(net, "proxy-1")
		ctx.Send("obs-c1", MsgFetch{ReqID: 1, Path: "/hot", Watch: true})
		keepalive()
	})
	net.RunFor(2 * time.Second)

	const n = 30
	committed := 0
	net.After(0, func() {
		ctx := clientCtx(net, "tailer")
		for i := 0; i < n; i++ {
			c.Write(&ctx, "/hot", []byte(fmt.Sprintf("w%d", i)), func(WriteResult) { committed++ })
		}
	})
	// Crash the leader while the burst is in flight, then let a new one
	// take over and the client retries drain.
	net.RunFor(30 * time.Millisecond)
	crashed := e.Leader()
	net.Fail(crashed)
	net.RunFor(60 * time.Second)
	net.Recover(crashed)
	net.RunFor(30 * time.Second)

	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
	if len(versions) == 0 {
		t.Fatal("watcher saw no events")
	}
	for i := 1; i < len(versions); i++ {
		if versions[i] <= versions[i-1] {
			t.Fatalf("watch versions out of order: %v", versions)
		}
	}
	finalRec := obsv.Tree().Get("/hot")
	if finalRec == nil {
		t.Fatal("observer missing /hot")
	}
	if last := versions[len(versions)-1]; last != finalRec.Version {
		t.Errorf("last notified version = %d, observer tree at %d", last, finalRec.Version)
	}
	if len(versions) >= int(finalRec.Version) {
		t.Logf("note: no coalescing observed (%d events for %d versions)", len(versions), finalRec.Version)
	}
}

// TestLeaderCrashMidBatch covers the chaos acceptance criterion: a leader
// crash while batched proposals are in flight must lose or commit each
// write atomically per the ZAB contract — after recovery every replica
// agrees, and the client's retries land every write exactly per its
// at-least-once contract.
func TestLeaderCrashMidBatch(t *testing.T) {
	for _, crashAfter := range []time.Duration{
		5 * time.Millisecond,   // before any wave is durably logged
		50 * time.Millisecond,  // waves logged, quorum not yet assembled
		150 * time.Millisecond, // mid-commit across regions
	} {
		crashAfter := crashAfter
		t.Run(crashAfter.String(), func(t *testing.T) {
			net, e := testDeployment(t, 35)
			c := addClient(net, e, "tailer")

			const n = 20
			committed := 0
			net.After(0, func() {
				ctx := clientCtx(net, "tailer")
				for i := 0; i < n; i++ {
					c.Write(&ctx, fmt.Sprintf("/batch/cfg-%d", i), []byte(fmt.Sprintf("b%d", i)),
						func(WriteResult) { committed++ })
				}
			})
			net.RunFor(crashAfter)
			crashed := e.Leader()
			if crashed == "" {
				t.Fatal("no leader to crash")
			}
			net.Fail(crashed)
			net.RunFor(60 * time.Second)
			net.Recover(crashed)
			net.RunFor(60 * time.Second)

			if committed != n {
				t.Fatalf("committed %d of %d after failover", committed, n)
			}
			leader := e.LeaderServer()
			if leader == nil {
				t.Fatal("no leader after recovery")
			}
			for i := 0; i < n; i++ {
				path := fmt.Sprintf("/batch/cfg-%d", i)
				want := fmt.Sprintf("b%d", i)
				rec := leader.Tree().Get(path)
				if rec == nil || string(rec.Data) != want {
					t.Errorf("leader missing %s", path)
				}
				// Atomic per ZAB: every replica has the identical record.
				for id, s := range e.Servers {
					got := s.Tree().Get(path)
					if got == nil || string(got.Data) != want || got.Zxid != rec.Zxid {
						t.Errorf("%s diverged on %s: %+v", id, path, got)
					}
				}
			}
		})
	}
}
