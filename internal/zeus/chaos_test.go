package zeus

import (
	"fmt"
	"testing"
	"time"

	"configerator/internal/simnet"
	"configerator/internal/stats"
)

// TestChaosConvergence subjects a 5-member ensemble to a random schedule
// of member crashes and recoveries (never more than two down at once, so a
// quorum always exists) while a client keeps writing. At the end, with all
// members recovered and the dust settled, every replica must agree on
// every path.
func TestChaosConvergence(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			net := simnet.New(simnet.DefaultLatency(), seed)
			placements := []simnet.Placement{
				{Region: "us-west", Cluster: "zk1"},
				{Region: "us-west", Cluster: "zk2"},
				{Region: "us-east", Cluster: "zk3"},
				{Region: "us-east", Cluster: "zk4"},
				{Region: "eu", Cluster: "zk5"},
			}
			e := StartEnsemble(net, 5, placements)
			net.RunFor(10 * time.Second)
			cl := NewClient("writer", e.Members)
			net.AddNode("writer", simnet.Placement{Region: "us-west", Cluster: "ctrl"}, cl)

			rng := stats.NewRNG(seed * 977)
			down := make(map[simnet.NodeID]bool)
			committed := 0
			// 40 rounds: each round maybe crash/recover a member, then
			// issue a write and run for a few seconds.
			for round := 0; round < 40; round++ {
				// Random fault action.
				m := e.Members[rng.Intn(len(e.Members))]
				if down[m] {
					net.Recover(m)
					delete(down, m)
				} else if len(down) < 2 && rng.Bool(0.4) {
					net.Fail(m)
					down[m] = true
				}
				path := fmt.Sprintf("/chaos/p%d", round%7)
				val := fmt.Sprintf("round-%d", round)
				func(r int) {
					net.After(0, func() {
						ctx := simnet.MakeContext(net, "writer")
						cl.Write(&ctx, path, []byte(val), func(WriteResult) { committed++ })
					})
				}(round)
				net.RunFor(4 * time.Second)
			}
			// Recover everyone and settle.
			for m := range down {
				net.Recover(m)
			}
			net.RunFor(2 * time.Minute)
			if cl.PendingWrites() != 0 {
				t.Fatalf("%d writes never committed (%d committed)", cl.PendingWrites(), committed)
			}
			if committed != 40 {
				t.Fatalf("committed = %d of 40", committed)
			}
			// All replicas agree on every path.
			leader := e.LeaderServer()
			if leader == nil {
				t.Fatal("no leader after recovery")
			}
			for _, path := range leader.Tree().Paths() {
				want := string(leader.Tree().Get(path).Data)
				for id, s := range e.Servers {
					rec := s.Tree().Get(path)
					if rec == nil || string(rec.Data) != want {
						t.Errorf("%s diverged on %s: %v (leader has %q)", id, path, rec, want)
					}
				}
			}
			// Each path's final value is from its LAST committed write.
			// (Retries may duplicate a write, but duplicates carry the
			// same data, so last-round data per path must win.)
			for p := 0; p < 7; p++ {
				path := fmt.Sprintf("/chaos/p%d", p)
				rec := leader.Tree().Get(path)
				if rec == nil {
					t.Errorf("%s missing", path)
					continue
				}
				lastRound := -1
				for round := p; round < 40; round += 7 {
					lastRound = round
				}
				if want := fmt.Sprintf("round-%d", lastRound); string(rec.Data) != want {
					t.Errorf("%s = %q, want %q", path, rec.Data, want)
				}
			}
		})
	}
}

// TestChaosObserversConverge runs the same churn with observers attached;
// observers must also converge.
func TestChaosObserversConverge(t *testing.T) {
	net := simnet.New(simnet.DefaultLatency(), 99)
	e := StartEnsemble(net, 5, []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
		{Region: "eu", Cluster: "zk4"},
		{Region: "ap", Cluster: "zk5"},
	})
	obs1 := e.AddObserver("obs-1", simnet.Placement{Region: "us", Cluster: "web1"})
	obs2 := e.AddObserver("obs-2", simnet.Placement{Region: "eu", Cluster: "web2"})
	net.RunFor(10 * time.Second)
	cl := NewClient("writer", e.Members)
	net.AddNode("writer", simnet.Placement{Region: "us", Cluster: "ctrl"}, cl)

	rng := stats.NewRNG(5)
	committed := 0
	for round := 0; round < 25; round++ {
		if rng.Bool(0.3) {
			obs := []simnet.NodeID{"obs-1", "obs-2"}[rng.Intn(2)]
			if net.IsDown(obs) {
				net.Recover(obs)
			} else {
				net.Fail(obs)
			}
		}
		if rng.Bool(0.25) {
			m := e.Members[rng.Intn(len(e.Members))]
			if net.IsDown(m) {
				net.Recover(m)
			} else {
				downCount := 0
				for _, mm := range e.Members {
					if net.IsDown(mm) {
						downCount++
					}
				}
				if downCount < 2 {
					net.Fail(m)
				}
			}
		}
		r := round
		net.After(0, func() {
			ctx := simnet.MakeContext(net, "writer")
			cl.Write(&ctx, "/obs-chaos", []byte(fmt.Sprintf("v%d", r)), func(WriteResult) { committed++ })
		})
		net.RunFor(5 * time.Second)
	}
	for _, id := range []simnet.NodeID{"obs-1", "obs-2", "zeus-0", "zeus-1", "zeus-2", "zeus-3", "zeus-4"} {
		if net.IsDown(id) {
			net.Recover(id)
		}
	}
	net.RunFor(2 * time.Minute)
	if committed != 25 {
		t.Fatalf("committed %d of 25", committed)
	}
	leader := e.LeaderServer()
	want := string(leader.Tree().Get("/obs-chaos").Data)
	if want != "v24" {
		t.Errorf("final value = %q, want v24", want)
	}
	for name, o := range map[string]*Observer{"obs-1": obs1, "obs-2": obs2} {
		rec := o.Tree().Get("/obs-chaos")
		if rec == nil || string(rec.Data) != want {
			t.Errorf("%s diverged: %v (want %q)", name, rec, want)
		}
	}
}
