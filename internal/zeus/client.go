package zeus

import (
	"time"

	"configerator/internal/simnet"
)

// WriteResult reports the outcome of a client write.
type WriteResult struct {
	OK      bool
	Zxid    int64
	Version int64
}

// Client is a write client for the ensemble (the Git Tailer is one). It
// finds the leader by following redirects and retries on timeout, so a
// caller only supplies the write and a completion callback.
type Client struct {
	id      simnet.NodeID
	members []simnet.NodeID
	target  int // index of the member currently believed to lead
	nextReq int64
	pending map[int64]*pendingWrite
}

type pendingWrite struct {
	msg  MsgWrite
	done func(WriteResult)
	sent time.Time
}

// clientRetryTimeout is how long the client waits for a reply before
// retrying against the next ensemble member.
const clientRetryTimeout = 1500 * time.Millisecond

type msgClientRetry struct{ ReqID int64 }

// NewClient constructs a write client.
func NewClient(id simnet.NodeID, members []simnet.NodeID) *Client {
	return &Client{id: id, members: members, pending: make(map[int64]*pendingWrite)}
}

// Write submits a write via the network; done is invoked exactly once on
// commit (never on failure — the client retries internally until the write
// lands, which is the tailer's required at-least-once behaviour).
func (c *Client) Write(ctx *simnet.Context, path string, data []byte, done func(WriteResult)) {
	c.nextReq++
	req := MsgWrite{ReqID: c.nextReq, Path: path, Data: data}
	c.pending[req.ReqID] = &pendingWrite{msg: req, done: done, sent: ctx.Now()}
	c.send(ctx, req.ReqID)
}

// Delete submits a path deletion.
func (c *Client) Delete(ctx *simnet.Context, path string, done func(WriteResult)) {
	c.nextReq++
	req := MsgWrite{ReqID: c.nextReq, Path: path, Delete: true}
	c.pending[req.ReqID] = &pendingWrite{msg: req, done: done, sent: ctx.Now()}
	c.send(ctx, req.ReqID)
}

func (c *Client) send(ctx *simnet.Context, reqID int64) {
	p, ok := c.pending[reqID]
	if !ok {
		return
	}
	target := c.members[c.target%len(c.members)]
	ctx.SendSized(target, p.msg, len(p.msg.Data))
	ctx.SetTimer(clientRetryTimeout, msgClientRetry{ReqID: reqID})
}

// HandleMessage implements simnet.Handler.
func (c *Client) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case MsgWriteReply:
		p, ok := c.pending[m.ReqID]
		if !ok {
			return // duplicate reply after retry
		}
		if m.OK {
			delete(c.pending, m.ReqID)
			if p.done != nil {
				p.done(WriteResult{OK: true, Zxid: m.Zxid, Version: m.Version})
			}
			return
		}
		// Not the leader: follow the redirect if provided, else rotate.
		if m.Redirect != "" {
			for i, member := range c.members {
				if member == m.Redirect {
					c.target = i
					break
				}
			}
		} else {
			c.target++
		}
		c.send(ctx, m.ReqID)
	case msgClientRetry:
		if _, ok := c.pending[m.ReqID]; ok {
			c.target++ // current target unresponsive; rotate
			c.send(ctx, m.ReqID)
		}
	}
}

// PendingWrites reports in-flight writes (tests).
func (c *Client) PendingWrites() int { return len(c.pending) }
