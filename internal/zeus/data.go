// Package zeus implements this repository's version of Zeus — Facebook's
// forked ZooKeeper (§3.4) — as deterministic state machines on simnet.
//
// An ensemble of servers distributed across regions runs a ZAB-style
// quorum-commit protocol: the leader assigns monotonically increasing zxids
// to writes, proposes them to followers, commits on quorum ack, and the
// commit log guarantees in-order delivery of config changes. If the leader
// fails, a follower is converted into a new leader. Each cluster designates
// observer servers that keep fully replicated read-only copies of the
// leader's data and receive committed writes asynchronously; per-server
// proxies connect to observers and set watches, forming the three-level
// leader→observer→proxy high-fanout push tree.
package zeus

import (
	"sort"
	"time"

	"configerator/internal/intern"
	"configerator/internal/vcs"
)

// Record is one versioned path in the data tree.
type Record struct {
	Path    string
	Data    []byte
	Version int64  // per-path version, starts at 1
	Zxid    int64  // global transaction id of the last write
	Hash    uint64 // content hash of Data (vcs.HashBytes)
	// At is when the leader accepted the write (virtual time). Followers
	// and observers that rebuild ops from pushes may not carry it; the
	// authoritative copy lives in the leader's tree, which is where
	// convergence watermarks are read.
	At time.Time
}

// WriteOp is one committed write in the global log. Replicas apply ops in
// zxid order, which is what gives every server the same eventual view in
// the same order (§3.4 data consistency).
type WriteOp struct {
	Zxid    int64
	Path    string
	Data    []byte
	Version int64
	Delete  bool
	// At is the leader-assigned accept time, stamped in onWrite so it is
	// identical on every replica the proposal or sync reaches.
	At time.Time
}

// DataTree is the replicated path→record store.
type DataTree struct {
	records map[string]*Record
	log     []WriteOp
	applied int64 // highest zxid applied
}

// NewDataTree returns an empty tree.
func NewDataTree() *DataTree {
	return &DataTree{records: make(map[string]*Record)}
}

// Apply applies one op if it is newer than anything applied; stale or
// duplicate ops (zxid <= applied) are ignored, making Apply idempotent.
func (t *DataTree) Apply(op WriteOp) bool {
	if op.Zxid <= t.applied {
		return false
	}
	// Canonicalize the path: every replica's records, log, and watch tables
	// key by the same shared string instance instead of per-message copies.
	op.Path = intern.Path(op.Path)
	t.applied = op.Zxid
	t.log = append(t.log, op)
	if op.Delete {
		delete(t.records, op.Path)
		return true
	}
	data := make([]byte, len(op.Data))
	copy(data, op.Data)
	t.records[op.Path] = &Record{Path: op.Path, Data: data, Version: op.Version,
		Zxid: op.Zxid, Hash: vcs.HashBytes(data), At: op.At}
	return true
}

// Watermark is the committed high-water mark of one path: the (zxid,
// content-hash) pair a fully-converged replica must serve, plus the
// leader accept time the convergence monitor measures time-to-head
// against.
type Watermark struct {
	Path    string
	Zxid    int64
	Version int64
	Hash    uint64
	At      time.Time
}

// Watermarks exports the committed high-water mark of every live path,
// sorted by path — the monitor's per-sweep view of "where the fleet
// should be".
func (t *DataTree) Watermarks() []Watermark {
	out := make([]Watermark, 0, len(t.records))
	for _, r := range t.records {
		out = append(out, Watermark{Path: r.Path, Zxid: r.Zxid,
			Version: r.Version, Hash: r.Hash, At: r.At})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Get returns the record at path (nil if absent).
func (t *DataTree) Get(path string) *Record { return t.records[path] }

// NextVersion returns the version the next write to path should carry.
func (t *DataTree) NextVersion(path string) int64 {
	if r := t.records[path]; r != nil {
		return r.Version + 1
	}
	return 1
}

// LastZxid reports the highest applied zxid.
func (t *DataTree) LastZxid() int64 { return t.applied }

// OpsAfter returns committed ops with zxid > after, in order — the
// observer catch-up path.
func (t *DataTree) OpsAfter(after int64) []WriteOp {
	// The log is in zxid order; binary search for the cut point.
	i := sort.Search(len(t.log), func(i int) bool { return t.log[i].Zxid > after })
	out := make([]WriteOp, len(t.log)-i)
	copy(out, t.log[i:])
	return out
}

// Paths returns all live paths, sorted (for tests).
func (t *DataTree) Paths() []string {
	out := make([]string, 0, len(t.records))
	for p := range t.records {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Size reports the number of live paths.
func (t *DataTree) Size() int { return len(t.records) }
