package zeus

import (
	"fmt"

	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// Ensemble wires a Zeus deployment onto a simnet: N members spread across
// regions plus any number of per-cluster observers.
type Ensemble struct {
	Net       *simnet.Network
	Members   []simnet.NodeID
	Servers   map[simnet.NodeID]*Server
	Observers map[simnet.NodeID]*Observer

	// Obs instruments commit and apply events ensemble-wide; set it with
	// SetObs before driving traffic.
	Obs *obs.Registry

	groupCommit   bool
	deltaEncoding bool
}

// SetGroupCommit toggles leader write coalescing ensemble-wide (default
// on). Off is the one-proposal-per-write baseline.
func (e *Ensemble) SetGroupCommit(on bool) {
	e.groupCommit = on
	for _, s := range e.Servers {
		s.SetGroupCommit(on)
	}
}

// SetDeltaEncoding toggles delta-encoded distribution ensemble-wide
// (default on). Off ships full snapshots — the bytes baseline.
func (e *Ensemble) SetDeltaEncoding(on bool) {
	e.deltaEncoding = on
	for _, s := range e.Servers {
		s.SetDeltaEncoding(on)
	}
	for _, o := range e.Observers {
		o.SetDeltaEncoding(on)
	}
}

// SetObs attaches an observability registry to every current member and
// observer; observers added later inherit it.
func (e *Ensemble) SetObs(r *obs.Registry) {
	e.Obs = r
	for _, s := range e.Servers {
		s.Obs = r
	}
	for _, o := range e.Observers {
		o.Obs = r
	}
}

// StartEnsemble creates n members placed round-robin over the given
// placements and arms their timers. Run the network for a few seconds of
// virtual time to elect the first leader.
func StartEnsemble(net *simnet.Network, n int, placements []simnet.Placement) *Ensemble {
	if n < 1 || len(placements) == 0 {
		panic("zeus: ensemble needs members and placements")
	}
	e := &Ensemble{
		Net:           net,
		Servers:       make(map[simnet.NodeID]*Server),
		Observers:     make(map[simnet.NodeID]*Observer),
		groupCommit:   true,
		deltaEncoding: true,
	}
	for i := 0; i < n; i++ {
		e.Members = append(e.Members, simnet.NodeID(fmt.Sprintf("zeus-%d", i)))
	}
	for i, id := range e.Members {
		s := NewServer(id, i, e.Members)
		e.Servers[id] = s
		net.AddNode(id, placements[i%len(placements)], s)
	}
	// Arm timers via a zero-delay self event.
	for _, id := range e.Members {
		id := id
		net.SetTimer(id, 0, msgTickFollower{})
	}
	return e
}

// AddObserver creates an observer at the placement and arms its timers.
func (e *Ensemble) AddObserver(id simnet.NodeID, p simnet.Placement) *Observer {
	o := NewObserver(id, e.Members)
	o.Obs = e.Obs
	o.SetDeltaEncoding(e.deltaEncoding)
	e.Observers[id] = o
	e.Net.AddNode(id, p, o)
	e.Net.SetTimer(id, 0, msgTickObserver{})
	return o
}

// Leader returns the current leader's id ("" if none elected). With
// multiple epochs in play the highest epoch wins.
func (e *Ensemble) Leader() simnet.NodeID {
	var best simnet.NodeID
	var bestEpoch int64 = -1
	for id, s := range e.Servers {
		if s.Role() == RoleLeader && s.Epoch() > bestEpoch && !e.Net.IsDown(id) {
			best = id
			bestEpoch = s.Epoch()
		}
	}
	return best
}

// LeaderServer returns the current leader's server (nil if none).
func (e *Ensemble) LeaderServer() *Server {
	if id := e.Leader(); id != "" {
		return e.Servers[id]
	}
	return nil
}

// Watermarks exports the committed (zxid, content-hash) high-water mark of
// every path from the current leader's tree — the convergence monitor's
// source of truth. Nil when no leader is elected (the monitor keeps its
// last-known heads across leaderless windows).
func (e *Ensemble) Watermarks() []Watermark {
	s := e.LeaderServer()
	if s == nil {
		return nil
	}
	return s.Tree().Watermarks()
}
