package zeus

import (
	"configerator/internal/simnet"
	"configerator/internal/vcs"
)

// ---- Ensemble protocol messages ----

// msgHeartbeat is sent by the leader to followers periodically.
type msgHeartbeat struct {
	Epoch int64
}

// msgTickLeader fires the leader's heartbeat timer.
type msgTickLeader struct{}

// msgTickFollower fires the follower's election-timeout check.
type msgTickFollower struct{}

// msgProbe starts an election: the candidate advertises its log position.
type msgProbe struct {
	Term     int64
	LastZxid int64
}

// msgProbeReply answers a probe with the replier's log position.
type msgProbeReply struct {
	Term     int64
	LastZxid int64
}

// msgElectionDecide fires after the candidate's vote-collection window.
type msgElectionDecide struct {
	Term int64
}

// msgNewLeader announces a won election.
type msgNewLeader struct {
	Term     int64
	LastZxid int64
}

// msgSyncRequest asks the leader for committed ops after LastZxid.
type msgSyncRequest struct {
	LastZxid int64
}

// msgSyncReply carries catch-up ops.
type msgSyncReply struct {
	Epoch int64
	Ops   []WriteOp
}

// msgProposeBatch carries one proposal wave — a group-committed batch of
// writes — to followers. One wave costs one durable log write and one ack
// round at each follower, however many writes it coalesces.
type msgProposeBatch struct {
	Epoch int64
	Ops   []WriteOp
}

// msgAckBatch acknowledges every proposal in a wave at once.
type msgAckBatch struct {
	Epoch int64
	Zxids []int64
}

// msgCommitBatch tells followers to apply a run of committed proposals, in
// zxid order.
type msgCommitBatch struct {
	Epoch int64
	Zxids []int64
}

// msgLogDone is the self-timer that fires when a proposal wave's durable
// log write completes; only then may the server acknowledge the wave
// (leader: count its own ack; follower: send msgAckBatch).
type msgLogDone struct {
	Epoch  int64
	Leader simnet.NodeID
	Zxids  []int64
}

// ---- Client protocol ----

// MsgWrite is a client write request (exported so drivers can build them).
type MsgWrite struct {
	ReqID  int64
	Path   string
	Data   []byte
	Delete bool
}

// MsgWriteReply reports the outcome of a write.
type MsgWriteReply struct {
	ReqID   int64
	OK      bool
	Zxid    int64
	Version int64
	// Redirect is the leader to retry against when OK is false and the
	// receiving server was not the leader ("" if unknown).
	Redirect simnet.NodeID
}

// ---- Delta-encoded distribution payloads ----

// payloadHeaderBytes is the on-wire framing charged for every payload: two
// content hashes, a length, and flags.
const payloadHeaderBytes = 24

// updateHeaderBytes is the per-update framing beyond the payload: version,
// zxid, and the path-length prefix (the path itself is charged separately).
const updateHeaderBytes = 16

// Payload carries a record's content either as a full snapshot or as a
// delta against a base version the receiver is believed to hold. The
// receiver verifies both hashes; any mismatch is a hash miss and the
// receiver falls back to a full-snapshot fetch or resync.
type Payload struct {
	Full     []byte // the complete content (when IsDelta is false)
	Delta    []byte // vcs.MakeDelta output (when IsDelta is true)
	BaseHash uint64 // content hash of the base the delta applies to
	NewHash  uint64 // content hash of the resulting content
	IsDelta  bool
}

// WireSize is the bytes this payload occupies on the wire.
func (p Payload) WireSize() int {
	if p.IsDelta {
		return len(p.Delta) + payloadHeaderBytes
	}
	return len(p.Full) + payloadHeaderBytes
}

// Resolve materializes the payload's content given the receiver's current
// bytes for the path. It returns ErrBadDelta (wrapped by vcs) on any hash
// miss, which callers must treat as "request a full snapshot".
func (p Payload) Resolve(old []byte) ([]byte, error) {
	if !p.IsDelta {
		return p.Full, nil
	}
	if vcs.HashBytes(old) != p.BaseHash {
		return nil, vcs.ErrBadDelta
	}
	out, err := vcs.ApplyDelta(old, p.Delta)
	if err != nil {
		return nil, err
	}
	if vcs.HashBytes(out) != p.NewHash {
		return nil, vcs.ErrBadDelta
	}
	return out, nil
}

// MakePayload builds the cheapest payload that turns old into new: a delta
// when one beats shipping the full content (and delta encoding is on), else
// a full snapshot.
func MakePayload(old, new []byte, delta bool) Payload {
	if delta {
		if d := vcs.MakeDelta(old, new); d != nil {
			return Payload{Delta: d, BaseHash: vcs.HashBytes(old),
				NewHash: vcs.HashBytes(new), IsDelta: true}
		}
	}
	return Payload{Full: new, NewHash: vcs.HashBytes(new)}
}

// Update is one record change shipped down the distribution tree
// (leader→observer pushes and observer→proxy watch events).
type Update struct {
	Path    string
	Version int64
	Zxid    int64
	Delete  bool
	Payload Payload
}

// WireSize is the bytes this update occupies on the wire.
func (u Update) WireSize() int {
	size := len(u.Path) + updateHeaderBytes
	if !u.Delete {
		size += u.Payload.WireSize()
	}
	return size
}

// updatesWireSize sums a batch's wire size.
func updatesWireSize(updates []Update) int {
	size := 0
	for _, u := range updates {
		size += u.WireSize()
	}
	return size
}

// ---- Observer protocol ----

// msgObserverRegister subscribes an observer to the leader's commit stream.
// It doubles as the hash-miss fallback: an observer that cannot apply a
// delta re-registers with its last zxid and the leader replies with full
// snapshots of everything after it.
type msgObserverRegister struct {
	LastZxid int64
}

// msgObserverSync carries catch-up ops (full snapshots) to an observer.
type msgObserverSync struct {
	Epoch int64
	Ops   []WriteOp
}

// msgObserverBatch streams one commit run — delta-encoded where possible —
// to an observer.
type msgObserverBatch struct {
	Epoch   int64
	Updates []Update
}

// msgTickObserver fires the observer's periodic re-register timer.
type msgTickObserver struct{}

// ---- Proxy-facing protocol (served by observers) ----

// MsgFetch asks an observer for a path's current record, optionally
// leaving a watch. Have/HaveHash advertise the content the proxy already
// holds (from memory or its disk cache) so the observer can answer with
// "not modified" or a delta instead of the full config.
type MsgFetch struct {
	ReqID    int64
	Path     string
	Watch    bool
	Have     bool
	HaveHash uint64
}

// MsgFetchReply answers a fetch. Exactly one of three shapes: NotModified
// (the proxy's copy is current; no payload), a delta payload against the
// advertised hash, or a full snapshot.
type MsgFetchReply struct {
	ReqID       int64
	Path        string
	Exists      bool
	Version     int64
	Zxid        int64
	NotModified bool
	Payload     Payload
}

// WireSize is the bytes this reply occupies on the wire.
func (m MsgFetchReply) WireSize() int {
	size := len(m.Path) + updateHeaderBytes
	if m.Exists && !m.NotModified {
		size += m.Payload.WireSize()
	}
	return size
}

// MsgWatchEvent notifies a watching proxy that a path changed. The new
// content rides along (push model: no extra round trip), delta-encoded
// against the previously notified version when possible.
type MsgWatchEvent struct {
	Update
}

// MsgUnwatch removes a proxy's watch on a path.
type MsgUnwatch struct {
	Path string
}

// MsgPing lets proxies health-check their observer.
type MsgPing struct{ ReqID int64 }

// MsgPong answers a ping.
type MsgPong struct{ ReqID int64 }
