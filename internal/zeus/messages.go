package zeus

import "configerator/internal/simnet"

// ---- Ensemble protocol messages ----

// msgHeartbeat is sent by the leader to followers periodically.
type msgHeartbeat struct {
	Epoch int64
}

// msgTickLeader fires the leader's heartbeat timer.
type msgTickLeader struct{}

// msgTickFollower fires the follower's election-timeout check.
type msgTickFollower struct{}

// msgProbe starts an election: the candidate advertises its log position.
type msgProbe struct {
	Term     int64
	LastZxid int64
}

// msgProbeReply answers a probe with the replier's log position.
type msgProbeReply struct {
	Term     int64
	LastZxid int64
}

// msgElectionDecide fires after the candidate's vote-collection window.
type msgElectionDecide struct {
	Term int64
}

// msgNewLeader announces a won election.
type msgNewLeader struct {
	Term     int64
	LastZxid int64
}

// msgSyncRequest asks the leader for committed ops after LastZxid.
type msgSyncRequest struct {
	LastZxid int64
}

// msgSyncReply carries catch-up ops.
type msgSyncReply struct {
	Epoch int64
	Ops   []WriteOp
}

// msgPropose carries a proposed (uncommitted) write to followers.
type msgPropose struct {
	Epoch int64
	Op    WriteOp
}

// msgAck acknowledges a proposal.
type msgAck struct {
	Epoch int64
	Zxid  int64
}

// msgCommit tells followers to apply a proposal.
type msgCommit struct {
	Epoch int64
	Zxid  int64
}

// ---- Client protocol ----

// MsgWrite is a client write request (exported so drivers can build them).
type MsgWrite struct {
	ReqID  int64
	Path   string
	Data   []byte
	Delete bool
}

// MsgWriteReply reports the outcome of a write.
type MsgWriteReply struct {
	ReqID   int64
	OK      bool
	Zxid    int64
	Version int64
	// Redirect is the leader to retry against when OK is false and the
	// receiving server was not the leader ("" if unknown).
	Redirect simnet.NodeID
}

// ---- Observer protocol ----

// msgObserverRegister subscribes an observer to the leader's commit stream.
type msgObserverRegister struct {
	LastZxid int64
}

// msgObserverSync carries catch-up ops to an observer.
type msgObserverSync struct {
	Epoch int64
	Ops   []WriteOp
}

// msgObserverPush streams one committed write to an observer.
type msgObserverPush struct {
	Epoch int64
	Op    WriteOp
}

// msgTickObserver fires the observer's periodic re-register timer.
type msgTickObserver struct{}

// ---- Proxy-facing protocol (served by observers) ----

// MsgFetch asks an observer for a path's current record, optionally
// leaving a watch.
type MsgFetch struct {
	ReqID int64
	Path  string
	Watch bool
}

// MsgFetchReply answers a fetch.
type MsgFetchReply struct {
	ReqID   int64
	Path    string
	Exists  bool
	Data    []byte
	Version int64
	Zxid    int64
}

// MsgWatchEvent notifies a watching proxy that a path changed. The new data
// rides along (push model: no extra round trip).
type MsgWatchEvent struct {
	Path    string
	Exists  bool
	Data    []byte
	Version int64
	Zxid    int64
}

// MsgUnwatch removes a proxy's watch on a path.
type MsgUnwatch struct {
	Path string
}

// MsgPing lets proxies health-check their observer.
type MsgPing struct{ ReqID int64 }

// MsgPong answers a ping.
type MsgPong struct{ ReqID int64 }
