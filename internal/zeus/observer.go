package zeus

import (
	"sync"
	"time"

	"configerator/internal/intern"
	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/vcs"
)

// batchScratch is the per-applyBatch working state (touched-path bases,
// final updates, touch order). Batches arrive on every commit wave across
// every observer in the fleet, so the maps are pooled rather than
// reallocated per batch; only scratch lives here — everything a watch
// event retains is copied out before the scratch is recycled.
type batchScratch struct {
	base  map[string][]byte
	final map[string]Update
	order []string
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{
		base:  make(map[string][]byte),
		final: make(map[string]Update),
	}
}}

func (s *batchScratch) release() {
	for k := range s.base {
		delete(s.base, k)
	}
	for k := range s.final {
		delete(s.final, k)
	}
	s.order = s.order[:0]
	batchScratchPool.Put(s)
}

// syncUpdatesPool recycles the Update slices built while decoding observer
// catch-up syncs (applyBatch does not retain the slice).
var syncUpdatesPool = sync.Pool{New: func() any {
	s := make([]Update, 0, 64)
	return &s
}}

// watchSessionTTL expires a proxy's watch registrations when the proxy
// stops talking to this observer (crashed, or failed over to another
// observer without an explicit unwatch). Healthy proxies ping their
// observer every ~2 s, so four missed intervals means the session is dead;
// without this sweep, every crashed proxy would leak its watch set here
// forever and keep receiving (dropped) events.
const watchSessionTTL = 8 * time.Second

// watchSet tracks the proxies watching one path in registration order.
// Notification order must be deterministic — each recipient's latency
// sample comes from the shared RNG, so map iteration order would make
// otherwise-identical runs diverge (the PR 8 bug class) — and sorting
// 100k watchers on every event is too dear, so registration order it is.
// Removals (failover unwatch, session prune) just drop the member and
// leave a hole in the order slice; holes are compacted lazily once they
// outnumber the live entries.
type watchSet struct {
	order   []simnet.NodeID
	members map[simnet.NodeID]bool
}

func newWatchSet() *watchSet {
	return &watchSet{members: make(map[simnet.NodeID]bool)}
}

func (w *watchSet) add(id simnet.NodeID) {
	if w.members[id] {
		return
	}
	w.members[id] = true
	w.order = append(w.order, id)
}

func (w *watchSet) remove(id simnet.NodeID) {
	delete(w.members, id)
}

// live appends the current members in registration order to buf and
// compacts the order slice when removals have left it mostly holes.
func (w *watchSet) live(buf []simnet.NodeID) []simnet.NodeID {
	buf = buf[:0]
	for _, id := range w.order {
		if w.members[id] {
			buf = append(buf, id)
		}
	}
	if len(w.order) > 2*len(buf)+8 {
		w.order = append(w.order[:0], buf...)
	}
	return buf
}

// Observer keeps a fully replicated read-only copy of the leader's data
// (§3.4). Each cluster runs several observers; the leader pushes committed
// writes to them asynchronously, and proxies in the cluster fetch configs
// from an observer and leave watches so that later updates are pushed the
// rest of the way down the tree.
type Observer struct {
	id      simnet.NodeID
	members []simnet.NodeID
	tree    *DataTree
	// watches maps path -> the ordered set of proxies to notify on change.
	watches map[string]*watchSet
	// notifyScratch is the reusable live-watcher list handed to Broadcast.
	notifyScratch []simnet.NodeID
	// prev holds each path's content as of the version before the current
	// one: the base a proxy that is exactly one version behind advertises,
	// and therefore the base worth delta-encoding fetch replies against.
	prev map[string][]byte
	// lastContact tracks when each watching proxy last pinged or fetched;
	// silent proxies have their watch sessions pruned (watchSessionTTL).
	lastContact map[simnet.NodeID]time.Time

	deltaEncoding bool

	// Notified counts watch events pushed (observability for benches).
	Notified uint64

	// Obs, when set, receives a propagation event for every op this
	// observer applies (nil = no instrumentation).
	Obs *obs.Registry
}

// NewObserver constructs an observer attached to the given ensemble
// member list.
func NewObserver(id simnet.NodeID, members []simnet.NodeID) *Observer {
	return &Observer{
		id:            id,
		members:       members,
		tree:          NewDataTree(),
		watches:       make(map[string]*watchSet),
		prev:          make(map[string][]byte),
		lastContact:   make(map[simnet.NodeID]time.Time),
		deltaEncoding: true,
	}
}

// Tree exposes the observer's replica (tests/benches).
func (o *Observer) Tree() *DataTree { return o.tree }

// WatchCount reports how many proxies watch the given path.
func (o *Observer) WatchCount(path string) int {
	if set := o.watches[path]; set != nil {
		return len(set.members)
	}
	return 0
}

// SetDeltaEncoding toggles delta-encoded watch events and fetch replies.
func (o *Observer) SetDeltaEncoding(on bool) { o.deltaEncoding = on }

// OnRestart implements simnet.Restarter: a recovered observer immediately
// re-registers (requesting catch-up from its last zxid) and re-arms its
// periodic registration timer.
func (o *Observer) OnRestart(ctx *simnet.Context) {
	o.register(ctx)
	ctx.SetTimer(observerRegisterGap, msgTickObserver{})
}

// register broadcasts a registration to all ensemble members; only the
// current leader responds and adds us to its push set. Broadcasting keeps
// the observer attached across leader failover without tracking epochs.
// It doubles as the delta hash-miss fallback: re-registering with our last
// zxid makes the leader re-ship everything after it as full snapshots.
func (o *Observer) register(ctx *simnet.Context) {
	for _, m := range o.members {
		ctx.Send(m, msgObserverRegister{LastZxid: o.tree.LastZxid()})
	}
}

// HandleMessage implements simnet.Handler.
func (o *Observer) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case msgTickObserver:
		o.register(ctx)
		o.pruneWatchSessions(ctx)
		ctx.SetTimer(observerRegisterGap, msgTickObserver{})
	case msgObserverSync:
		// Catch-up ops arrive as full snapshots; run them through the same
		// coalescing apply path as live pushes. The decoded slice is pooled
		// scratch — applyBatch copies out anything it keeps.
		up := syncUpdatesPool.Get().(*[]Update)
		updates := (*up)[:0]
		for _, op := range m.Ops {
			u := Update{Path: op.Path, Version: op.Version, Zxid: op.Zxid, Delete: op.Delete}
			if !op.Delete {
				u.Payload = Payload{Full: op.Data, NewHash: vcs.HashBytes(op.Data)}
			}
			updates = append(updates, u)
		}
		o.applyBatch(ctx, updates)
		for i := range updates {
			updates[i] = Update{} // drop payload references before pooling
		}
		*up = updates[:0]
		syncUpdatesPool.Put(up)
	case msgObserverBatch:
		o.applyBatch(ctx, m.Updates)
	case MsgFetch:
		o.onFetch(ctx, from, m)
	case MsgUnwatch:
		if set := o.watches[m.Path]; set != nil {
			set.remove(from)
			if len(set.members) == 0 {
				delete(o.watches, m.Path)
			}
		}
	case MsgPing:
		o.lastContact[from] = ctx.Now()
		ctx.Send(from, MsgPong{ReqID: m.ReqID})
	}
}

// pruneWatchSessions drops watch registrations (and contact records) for
// proxies that have been silent past watchSessionTTL — crashed, or failed
// over to another observer. This is the observer-side half of the
// watch-session leak fix; the proxy also unwatches eagerly on failover.
func (o *Observer) pruneWatchSessions(ctx *simnet.Context) {
	now := ctx.Now()
	var dead []simnet.NodeID
	for proxy, seen := range o.lastContact {
		if now.Sub(seen) > watchSessionTTL {
			dead = append(dead, proxy)
		}
	}
	for _, proxy := range dead {
		delete(o.lastContact, proxy)
		for path, set := range o.watches {
			if set.members[proxy] {
				set.remove(proxy)
				o.Obs.Add("zeus.observer.watch_pruned", 1)
			}
			if len(set.members) == 0 {
				delete(o.watches, path)
			}
		}
	}
}

// applyBatch applies one commit run in zxid order and then notifies
// watchers once per touched path — rapid successive writes to one path
// coalesce into a single watch event carrying the final version. A delta
// that fails to apply (hash miss: this observer's base diverged, e.g. it
// restarted mid-stream) aborts the batch and falls back to a full-snapshot
// resync via re-registration.
func (o *Observer) applyBatch(ctx *simnet.Context, updates []Update) {
	// base holds each touched path's content before this batch — the
	// version watchers last saw, hence the delta base for their event.
	// All three structures are pooled scratch; nothing in them survives
	// this call.
	scratch := batchScratchPool.Get().(*batchScratch)
	defer scratch.release()
	base, final := scratch.base, scratch.final
	order := scratch.order
	defer func() { scratch.order = order }() // keep the grown capacity pooled
	for _, u := range updates {
		if u.Zxid <= o.tree.LastZxid() {
			continue // duplicate or stale (e.g. overlapping sync)
		}
		u.Path = intern.Path(u.Path)
		var oldData []byte
		if old := o.tree.Get(u.Path); old != nil {
			oldData = old.Data
		}
		var newData []byte
		if !u.Delete {
			var err error
			newData, err = u.Payload.Resolve(oldData)
			if err != nil {
				o.Obs.Add("zeus.observer.delta_miss", 1)
				o.register(ctx)
				break // resync re-ships this zxid onward as full snapshots
			}
		}
		if !o.tree.Apply(WriteOp{Zxid: u.Zxid, Path: u.Path, Data: newData, Version: u.Version, Delete: u.Delete}) {
			continue
		}
		o.prev[u.Path] = oldData
		o.Obs.PathEvent(u.Path, obs.PropEvent{
			Stage: obs.EvObserverApply, Node: string(o.id), Zxid: u.Zxid, At: ctx.Now(),
		})
		if _, seen := final[u.Path]; !seen {
			base[u.Path] = oldData
			order = append(order, u.Path)
		} else {
			o.Obs.Add("zeus.observer.coalesced", 1)
		}
		final[u.Path] = u
	}
	for _, path := range order {
		set := o.watches[path]
		if set == nil || len(set.members) == 0 {
			continue
		}
		u := final[path]
		ev := MsgWatchEvent{Update: Update{Path: path, Version: u.Version, Zxid: u.Zxid, Delete: u.Delete}}
		if !u.Delete {
			rec := o.tree.Get(path)
			ev.Payload = MakePayload(base[path], rec.Data, o.deltaEncoding && base[path] != nil)
		}
		// One shared payload, serialization charged once for the wave,
		// recipients in registration order (deterministic — see watchSet).
		o.notifyScratch = set.live(o.notifyScratch)
		ctx.Broadcast(o.notifyScratch, ev, ev.Update.WireSize())
		o.Notified += uint64(len(o.notifyScratch))
	}
}

// onFetch answers a proxy's pull. The proxy advertises the hash of the
// content it already holds, so the reply is the cheapest of: "not
// modified", a delta against the previous version, or a full snapshot.
func (o *Observer) onFetch(ctx *simnet.Context, from simnet.NodeID, m MsgFetch) {
	o.lastContact[from] = ctx.Now()
	if m.Watch {
		set, ok := o.watches[m.Path]
		if !ok {
			set = newWatchSet()
			o.watches[intern.Path(m.Path)] = set
		}
		set.add(from)
	}
	reply := MsgFetchReply{ReqID: m.ReqID, Path: m.Path}
	if rec := o.tree.Get(m.Path); rec != nil {
		reply.Exists = true
		reply.Version = rec.Version
		reply.Zxid = rec.Zxid
		switch {
		case m.Have && m.HaveHash == vcs.HashBytes(rec.Data):
			reply.NotModified = true
			o.Obs.Add("zeus.fetch.not_modified", 1)
		case m.Have && o.deltaEncoding && o.prev[m.Path] != nil && m.HaveHash == vcs.HashBytes(o.prev[m.Path]):
			reply.Payload = MakePayload(o.prev[m.Path], rec.Data, true)
			if reply.Payload.IsDelta {
				o.Obs.Add("zeus.fetch.delta", 1)
			} else {
				o.Obs.Add("zeus.fetch.full", 1)
			}
		default:
			reply.Payload = MakePayload(nil, rec.Data, false)
			o.Obs.Add("zeus.fetch.full", 1)
		}
	}
	ctx.SendSized(from, reply, reply.WireSize())
}
