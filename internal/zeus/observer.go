package zeus

import (
	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// Observer keeps a fully replicated read-only copy of the leader's data
// (§3.4). Each cluster runs several observers; the leader pushes committed
// writes to them asynchronously, and proxies in the cluster fetch configs
// from an observer and leave watches so that later updates are pushed the
// rest of the way down the tree.
type Observer struct {
	id      simnet.NodeID
	members []simnet.NodeID
	tree    *DataTree
	// watches maps path -> the set of proxies to notify on change.
	watches map[string]map[simnet.NodeID]bool

	// Notified counts watch events pushed (observability for benches).
	Notified uint64

	// Obs, when set, receives a propagation event for every op this
	// observer applies (nil = no instrumentation).
	Obs *obs.Registry
}

// NewObserver constructs an observer attached to the given ensemble
// member list.
func NewObserver(id simnet.NodeID, members []simnet.NodeID) *Observer {
	return &Observer{
		id:      id,
		members: members,
		tree:    NewDataTree(),
		watches: make(map[string]map[simnet.NodeID]bool),
	}
}

// Tree exposes the observer's replica (tests/benches).
func (o *Observer) Tree() *DataTree { return o.tree }

// WatchCount reports how many proxies watch the given path.
func (o *Observer) WatchCount(path string) int { return len(o.watches[path]) }

// OnRestart implements simnet.Restarter: a recovered observer immediately
// re-registers (requesting catch-up from its last zxid) and re-arms its
// periodic registration timer.
func (o *Observer) OnRestart(ctx *simnet.Context) {
	o.register(ctx)
	ctx.SetTimer(observerRegisterGap, msgTickObserver{})
}

// register broadcasts a registration to all ensemble members; only the
// current leader responds and adds us to its push set. Broadcasting keeps
// the observer attached across leader failover without tracking epochs.
func (o *Observer) register(ctx *simnet.Context) {
	for _, m := range o.members {
		ctx.Send(m, msgObserverRegister{LastZxid: o.tree.LastZxid()})
	}
}

// HandleMessage implements simnet.Handler.
func (o *Observer) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case msgTickObserver:
		o.register(ctx)
		ctx.SetTimer(observerRegisterGap, msgTickObserver{})
	case msgObserverSync:
		for _, op := range m.Ops {
			o.apply(ctx, op)
		}
	case msgObserverPush:
		o.apply(ctx, m.Op)
	case MsgFetch:
		o.onFetch(ctx, from, m)
	case MsgUnwatch:
		if set := o.watches[m.Path]; set != nil {
			delete(set, from)
		}
	case MsgPing:
		ctx.Send(from, MsgPong{ReqID: m.ReqID})
	}
}

func (o *Observer) apply(ctx *simnet.Context, op WriteOp) {
	if !o.tree.Apply(op) {
		return // duplicate or stale
	}
	o.Obs.PathEvent(op.Path, obs.PropEvent{
		Stage: obs.EvObserverApply, Node: string(o.id), Zxid: op.Zxid, At: ctx.Now(),
	})
	rec := o.tree.Get(op.Path)
	ev := MsgWatchEvent{Path: op.Path, Zxid: op.Zxid}
	if rec != nil {
		ev.Exists = true
		ev.Data = rec.Data
		ev.Version = rec.Version
	}
	for proxy := range o.watches[op.Path] {
		ctx.SendSized(proxy, ev, len(ev.Data))
		o.Notified++
	}
}

func (o *Observer) onFetch(ctx *simnet.Context, from simnet.NodeID, m MsgFetch) {
	if m.Watch {
		set, ok := o.watches[m.Path]
		if !ok {
			set = make(map[simnet.NodeID]bool)
			o.watches[m.Path] = set
		}
		set[from] = true
	}
	reply := MsgFetchReply{ReqID: m.ReqID, Path: m.Path}
	if rec := o.tree.Get(m.Path); rec != nil {
		reply.Exists = true
		reply.Data = rec.Data
		reply.Version = rec.Version
		reply.Zxid = rec.Zxid
	}
	ctx.SendSized(from, reply, len(reply.Data))
}
