package zeus

import (
	"testing"
	"testing/quick"
)

func TestQuickDataTreeMonotoneZxid(t *testing.T) {
	// Whatever the op sequence, the tree's applied zxid never decreases
	// and stale ops never clobber newer state.
	err := quick.Check(func(zxids []int64, datas [][]byte) bool {
		tree := NewDataTree()
		var highest int64
		var lastData []byte
		n := len(zxids)
		if len(datas) < n {
			n = len(datas)
		}
		for i := 0; i < n; i++ {
			z := zxids[i]
			if z < 0 {
				z = -z
			}
			applied := tree.Apply(WriteOp{Zxid: z, Path: "/p", Data: datas[i], Version: int64(i)})
			if applied != (z > highest) {
				return false
			}
			if applied {
				highest = z
				lastData = datas[i]
			}
			if tree.LastZxid() != highest {
				return false
			}
		}
		if highest == 0 {
			return true
		}
		rec := tree.Get("/p")
		return rec != nil && string(rec.Data) == string(lastData)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickOpsAfterPartitions(t *testing.T) {
	// OpsAfter(k) returns exactly the committed ops with zxid > k.
	err := quick.Check(func(count uint8, cut uint8) bool {
		tree := NewDataTree()
		n := int(count%50) + 1
		for i := 1; i <= n; i++ {
			tree.Apply(WriteOp{Zxid: int64(i * 2), Path: "/p", Version: int64(i)})
		}
		k := int64(cut) % int64(n*2+2)
		ops := tree.OpsAfter(k)
		for _, op := range ops {
			if op.Zxid <= k {
				return false
			}
		}
		// Count check: ops with zxid in (k, 2n] stepping by 2.
		want := 0
		for i := 1; i <= n; i++ {
			if int64(i*2) > k {
				want++
			}
		}
		return len(ops) == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
