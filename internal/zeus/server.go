package zeus

import (
	"sort"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// Role is an ensemble member's current role.
type Role int

// Ensemble roles.
const (
	RoleFollower Role = iota
	RoleCandidate
	RoleLeader
)

// Timing constants for the ensemble protocol. The heartbeat keeps
// followership cheap; the election timeout is staggered per member index so
// that elections rarely duel.
const (
	heartbeatInterval   = 500 * time.Millisecond
	electionTimeoutBase = 2 * time.Second
	electionStagger     = 400 * time.Millisecond
	electionWindow      = 300 * time.Millisecond
	observerRegisterGap = 2 * time.Second
	// observerSessionTTL expires an observer session at the leader when the
	// observer stops re-registering (crashed or partitioned away): the
	// leader must not push commit batches into a dead link forever. A
	// recovered observer re-registers with its last zxid and catches up via
	// the full-snapshot sync path.
	observerSessionTTL = 3 * observerRegisterGap
)

// Group-commit tuning. Every proposal wave costs one durable log write
// (logSyncDelay) at the leader and at each follower before it may be
// acknowledged — the disk force that makes a commit survive a crash. Group
// commit amortizes that cost: writes arriving while a wave is in flight
// coalesce into the next wave, so one log write and one ack round commit N
// writes. A solitary write proposes immediately (no added latency); up to
// maxInflightWaves waves pipeline so the next batch proposes while the
// previous one commits.
const (
	logSyncDelay     = 10 * time.Millisecond
	maxInflightWaves = 2
	maxWaveOps       = 128
)

// zxidEpochShift packs the epoch into the high bits of the zxid so that a
// new leader's transactions always order after every prior epoch's.
const zxidEpochShift = 32

type proposal struct {
	op        WriteOp
	acks      map[simnet.NodeID]bool
	committed bool
	client    simnet.NodeID
	reqID     int64
}

// Server is one ensemble member (leader or follower).
type Server struct {
	id      simnet.NodeID
	index   int // position in the member list, staggers election timeouts
	members []simnet.NodeID

	role     Role
	epoch    int64
	leaderID simnet.NodeID
	tree     *DataTree

	// Leader state. observers maps each registered observer to the instant
	// it last re-registered; sessions silent past observerSessionTTL expire.
	counter     int64
	pending     map[int64]*proposal
	versionSeq  map[string]int64 // highest version assigned per path (incl. pending)
	observers   map[simnet.NodeID]time.Time
	pendingZxid []int64 // sorted pending zxids for in-order commit

	// Group-commit state (leader).
	batchBuf      []*proposal // writes waiting for the next proposal wave
	waveEnds      []int64     // highest zxid of each in-flight wave, in order
	inflightWaves int
	groupCommit   bool // coalesce writes into multi-op waves (default on)
	deltaEncoding bool // delta-encode observer pushes (default on)

	// logBusyUntil models the single durable log device: wave log writes
	// serialize behind each other at logSyncDelay apiece.
	logBusyUntil time.Time

	// Follower state.
	lastLeaderContact time.Time
	uncommitted       map[int64]WriteOp

	// Candidate state.
	probeTerm    int64
	probeReplies map[simnet.NodeID]int64 // replier -> lastZxid

	// needSync is set after a restart: the node may have missed commits
	// while down and must catch up from the leader even if the epoch is
	// unchanged.
	needSync bool

	started bool

	// Obs, when set, receives a propagation event for every write this
	// member commits as leader (nil = no instrumentation).
	Obs *obs.Registry
}

// NewServer constructs an ensemble member; register it on the network and
// then call Start via the ensemble helper.
func NewServer(id simnet.NodeID, index int, members []simnet.NodeID) *Server {
	return &Server{
		id:            id,
		index:         index,
		members:       members,
		tree:          NewDataTree(),
		pending:       make(map[int64]*proposal),
		versionSeq:    make(map[string]int64),
		observers:     make(map[simnet.NodeID]time.Time),
		uncommitted:   make(map[int64]WriteOp),
		groupCommit:   true,
		deltaEncoding: true,
	}
}

// Tree exposes the replica state (read-only use in tests and benches).
func (s *Server) Tree() *DataTree { return s.tree }

// Role reports the server's current role.
func (s *Server) Role() Role { return s.role }

// Epoch reports the server's current epoch.
func (s *Server) Epoch() int64 { return s.epoch }

// LeaderID reports who this server believes leads ("" if unknown).
func (s *Server) LeaderID() simnet.NodeID { return s.leaderID }

// ObserverCount reports how many observer sessions this server (when
// leader) currently considers live.
func (s *Server) ObserverCount() int { return len(s.observers) }

// SetGroupCommit toggles write coalescing. Off, every write proposes its
// own single-op wave immediately — the one-proposal-per-write baseline the
// distribution benchmark compares against.
func (s *Server) SetGroupCommit(on bool) { s.groupCommit = on }

// SetDeltaEncoding toggles delta-encoded observer pushes (full snapshots
// when off — the bytes-on-wire baseline).
func (s *Server) SetDeltaEncoding(on bool) { s.deltaEncoding = on }

func (s *Server) quorum() int { return len(s.members)/2 + 1 }

func (s *Server) electionTimeout() time.Duration {
	return electionTimeoutBase + time.Duration(s.index)*electionStagger
}

func (s *Server) othersDo(ctx *simnet.Context, fn func(peer simnet.NodeID)) {
	for _, m := range s.members {
		if m != s.id {
			fn(m)
		}
	}
}

// HandleMessage implements simnet.Handler.
func (s *Server) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	if !s.started {
		// First event (the bootstrap timer) initializes liveness tracking;
		// the tick handler below re-arms its own chain.
		s.started = true
		s.lastLeaderContact = ctx.Now()
	}
	switch m := msg.(type) {
	case msgTickFollower:
		s.onFollowerTick(ctx)
	case msgTickLeader:
		s.onLeaderTick(ctx)
	case msgHeartbeat:
		s.onHeartbeat(ctx, from, m)
	case msgProbe:
		s.onProbe(ctx, from, m)
	case msgProbeReply:
		s.onProbeReply(ctx, from, m)
	case msgElectionDecide:
		s.onElectionDecide(ctx, m)
	case msgNewLeader:
		s.onNewLeader(ctx, from, m)
	case msgSyncRequest:
		s.onSyncRequest(ctx, from, m)
	case msgSyncReply:
		s.onSyncReply(ctx, from, m)
	case MsgWrite:
		s.onWrite(ctx, from, m)
	case msgProposeBatch:
		s.onProposeBatch(ctx, from, m)
	case msgLogDone:
		s.onLogDone(ctx, m)
	case msgAckBatch:
		s.onAckBatch(ctx, from, m)
	case msgCommitBatch:
		s.onCommitBatch(ctx, from, m)
	case msgObserverRegister:
		s.onObserverRegister(ctx, from, m)
	}
}

// OnRestart implements simnet.Restarter: a recovered member rejoins as a
// follower and re-arms its election-timeout chain.
func (s *Server) OnRestart(ctx *simnet.Context) {
	s.role = RoleFollower
	s.lastLeaderContact = ctx.Now()
	s.uncommitted = make(map[int64]WriteOp)
	s.resetWaves()
	s.needSync = true
	if s.leaderID != "" && s.leaderID != s.id {
		ctx.Send(s.leaderID, msgSyncRequest{LastZxid: s.tree.LastZxid()})
	}
	ctx.SetTimer(s.electionTimeout()/2, msgTickFollower{})
}

// resetWaves drops all leader-side batching state (deposed, restarted, or
// newly elected). Buffered writes are lost — their clients time out and
// retry, the standard at-least-once contract.
func (s *Server) resetWaves() {
	s.batchBuf = nil
	s.waveEnds = nil
	s.inflightWaves = 0
	s.logBusyUntil = time.Time{}
}

// ---- Follower / election ----

func (s *Server) onFollowerTick(ctx *simnet.Context) {
	if s.role == RoleLeader {
		return // leader uses its own tick
	}
	ctx.SetTimer(s.electionTimeout()/2, msgTickFollower{})
	if ctx.Now().Sub(s.lastLeaderContact) < s.electionTimeout() {
		return
	}
	s.startElection(ctx, s.epoch+1)
}

func (s *Server) startElection(ctx *simnet.Context, term int64) {
	if s.role == RoleLeader || (s.role == RoleCandidate && s.probeTerm >= term) {
		return
	}
	s.role = RoleCandidate
	s.probeTerm = term
	s.probeReplies = make(map[simnet.NodeID]int64)
	s.othersDo(ctx, func(peer simnet.NodeID) {
		ctx.Send(peer, msgProbe{Term: term, LastZxid: s.tree.LastZxid()})
	})
	ctx.SetTimer(electionWindow, msgElectionDecide{Term: term})
}

func (s *Server) onProbe(ctx *simnet.Context, from simnet.NodeID, m msgProbe) {
	if m.Term <= s.epoch {
		return // stale candidacy
	}
	ctx.Send(from, msgProbeReply{Term: m.Term, LastZxid: s.tree.LastZxid()})
	// Defer our own timeout: someone is already running an election.
	s.lastLeaderContact = ctx.Now()
	// If we are strictly better positioned than the candidate, contest the
	// election so the most up-to-date member wins.
	if s.role != RoleLeader && s.betterThan(m.LastZxid, from) {
		s.startElection(ctx, m.Term)
	}
}

// betterThan reports whether this server outranks a candidate with the
// given log position (higher zxid wins; ties break to the smaller id).
func (s *Server) betterThan(candZxid int64, candID simnet.NodeID) bool {
	my := s.tree.LastZxid()
	if my != candZxid {
		return my > candZxid
	}
	return s.id < candID
}

func (s *Server) onProbeReply(ctx *simnet.Context, from simnet.NodeID, m msgProbeReply) {
	if s.role != RoleCandidate || m.Term != s.probeTerm {
		return
	}
	s.probeReplies[from] = m.LastZxid
}

func (s *Server) onElectionDecide(ctx *simnet.Context, m msgElectionDecide) {
	if s.role != RoleCandidate || m.Term != s.probeTerm {
		return
	}
	// Count self plus repliers; require a quorum of reachable members.
	if len(s.probeReplies)+1 < s.quorum() {
		s.role = RoleFollower // retry after next timeout
		return
	}
	my := s.tree.LastZxid()
	for peer, zxid := range s.probeReplies {
		if zxid > my || (zxid == my && peer < s.id) {
			// A better-positioned peer exists; let it win (we nudged it in
			// onProbe). Stand down.
			s.role = RoleFollower
			s.lastLeaderContact = ctx.Now()
			return
		}
	}
	s.becomeLeader(ctx, m.Term)
}

func (s *Server) becomeLeader(ctx *simnet.Context, term int64) {
	s.role = RoleLeader
	s.epoch = term
	s.leaderID = s.id
	s.counter = 0
	s.pending = make(map[int64]*proposal)
	s.pendingZxid = nil
	s.versionSeq = make(map[string]int64)
	s.observers = make(map[simnet.NodeID]time.Time)
	s.uncommitted = make(map[int64]WriteOp)
	s.resetWaves()
	s.othersDo(ctx, func(peer simnet.NodeID) {
		ctx.Send(peer, msgNewLeader{Term: term, LastZxid: s.tree.LastZxid()})
	})
	ctx.SetTimer(heartbeatInterval, msgTickLeader{})
}

func (s *Server) onNewLeader(ctx *simnet.Context, from simnet.NodeID, m msgNewLeader) {
	if m.Term < s.epoch {
		return
	}
	s.role = RoleFollower
	s.epoch = m.Term
	s.leaderID = from
	s.lastLeaderContact = ctx.Now()
	s.uncommitted = make(map[int64]WriteOp)
	s.resetWaves()
	ctx.Send(from, msgSyncRequest{LastZxid: s.tree.LastZxid()})
}

func (s *Server) onLeaderTick(ctx *simnet.Context) {
	if s.role != RoleLeader {
		return
	}
	ctx.SetTimer(heartbeatInterval, msgTickLeader{})
	s.othersDo(ctx, func(peer simnet.NodeID) {
		ctx.Send(peer, msgHeartbeat{Epoch: s.epoch})
	})
	s.expireObservers(ctx)
}

// expireObservers drops observer sessions that stopped re-registering.
func (s *Server) expireObservers(ctx *simnet.Context) {
	for ob, seen := range s.observers {
		if ctx.Now().Sub(seen) > observerSessionTTL {
			delete(s.observers, ob)
			s.Obs.Add("zeus.observer.expired", 1)
		}
	}
}

func (s *Server) onHeartbeat(ctx *simnet.Context, from simnet.NodeID, m msgHeartbeat) {
	if m.Epoch < s.epoch {
		return
	}
	if m.Epoch > s.epoch || s.leaderID != from || s.needSync {
		s.epoch = m.Epoch
		s.leaderID = from
		s.role = RoleFollower
		s.needSync = false
		ctx.Send(from, msgSyncRequest{LastZxid: s.tree.LastZxid()})
	}
	s.lastLeaderContact = ctx.Now()
}

func (s *Server) onSyncRequest(ctx *simnet.Context, from simnet.NodeID, m msgSyncRequest) {
	if s.role != RoleLeader {
		return
	}
	ops := s.tree.OpsAfter(m.LastZxid)
	size := 0
	for _, op := range ops {
		size += len(op.Data)
	}
	ctx.SendSized(from, msgSyncReply{Epoch: s.epoch, Ops: ops}, size)
}

func (s *Server) onSyncReply(ctx *simnet.Context, from simnet.NodeID, m msgSyncReply) {
	if m.Epoch < s.epoch {
		return
	}
	for _, op := range m.Ops {
		s.tree.Apply(op)
	}
	s.lastLeaderContact = ctx.Now()
}

// ---- Write path ----

func (s *Server) onWrite(ctx *simnet.Context, from simnet.NodeID, m MsgWrite) {
	if s.role != RoleLeader {
		ctx.Send(from, MsgWriteReply{ReqID: m.ReqID, OK: false, Redirect: s.leaderID})
		return
	}
	s.counter++
	zxid := s.epoch<<zxidEpochShift | s.counter
	version := s.tree.NextVersion(m.Path)
	if v := s.versionSeq[m.Path] + 1; v > version {
		version = v
	}
	s.versionSeq[m.Path] = version
	op := WriteOp{Zxid: zxid, Path: m.Path, Data: m.Data, Version: version, Delete: m.Delete, At: ctx.Now()}
	p := &proposal{op: op, acks: make(map[simnet.NodeID]bool), client: from, reqID: m.ReqID}
	s.pending[zxid] = p
	s.pendingZxid = append(s.pendingZxid, zxid)
	s.batchBuf = append(s.batchBuf, p)
	s.maybePropose(ctx)
}

// maybePropose drains the write buffer into proposal waves. With group
// commit on, the buffer rides as one wave and at most maxInflightWaves
// pipeline; off, every buffered write goes out as its own wave.
func (s *Server) maybePropose(ctx *simnet.Context) {
	if s.role != RoleLeader || len(s.batchBuf) == 0 {
		return
	}
	if !s.groupCommit {
		for _, p := range s.batchBuf {
			s.proposeWave(ctx, []*proposal{p})
		}
		s.batchBuf = nil
		return
	}
	for len(s.batchBuf) > 0 && s.inflightWaves < maxInflightWaves {
		n := len(s.batchBuf)
		if n > maxWaveOps {
			n = maxWaveOps
		}
		wave := s.batchBuf[:n:n]
		s.batchBuf = append([]*proposal(nil), s.batchBuf[n:]...)
		s.proposeWave(ctx, wave)
	}
}

// proposeWave sends one multi-op proposal to every follower and starts the
// leader's own durable log write for it.
func (s *Server) proposeWave(ctx *simnet.Context, wave []*proposal) {
	ops := make([]WriteOp, len(wave))
	zxids := make([]int64, len(wave))
	size := 0
	for i, p := range wave {
		ops[i] = p.op
		zxids[i] = p.op.Zxid
		size += len(p.op.Path) + updateHeaderBytes + len(p.op.Data)
	}
	s.inflightWaves++
	s.waveEnds = append(s.waveEnds, zxids[len(zxids)-1])
	s.Obs.Add("zeus.propose.waves", 1)
	s.Obs.Add("zeus.propose.ops", int64(len(ops)))
	s.othersDo(ctx, func(peer simnet.NodeID) {
		ctx.SendSized(peer, msgProposeBatch{Epoch: s.epoch, Ops: ops}, size)
	})
	s.scheduleLog(ctx, s.epoch, s.id, zxids)
}

// scheduleLog queues one durable log write for a wave on this server's log
// device; waves serialize behind each other at logSyncDelay apiece, which
// is exactly the cost group commit amortizes.
func (s *Server) scheduleLog(ctx *simnet.Context, epoch int64, leader simnet.NodeID, zxids []int64) {
	now := ctx.Now()
	if s.logBusyUntil.Before(now) {
		s.logBusyUntil = now
	}
	s.logBusyUntil = s.logBusyUntil.Add(logSyncDelay)
	ctx.SetTimer(s.logBusyUntil.Sub(now), msgLogDone{Epoch: epoch, Leader: leader, Zxids: zxids})
}

// onLogDone fires when a wave's log write is durable: the leader counts its
// own ack, a follower acknowledges the whole wave to the leader.
func (s *Server) onLogDone(ctx *simnet.Context, m msgLogDone) {
	if m.Epoch != s.epoch {
		return // logged under a superseded leadership
	}
	if m.Leader == s.id {
		if s.role != RoleLeader {
			return
		}
		for _, zxid := range m.Zxids {
			if p := s.pending[zxid]; p != nil {
				p.acks[s.id] = true
			}
		}
		s.maybeCommit(ctx)
		return
	}
	if m.Leader != s.leaderID {
		return
	}
	ctx.Send(m.Leader, msgAckBatch{Epoch: m.Epoch, Zxids: m.Zxids})
}

func (s *Server) onProposeBatch(ctx *simnet.Context, from simnet.NodeID, m msgProposeBatch) {
	if m.Epoch < s.epoch || from != s.leaderID {
		return
	}
	s.lastLeaderContact = ctx.Now()
	zxids := make([]int64, len(m.Ops))
	for i, op := range m.Ops {
		s.uncommitted[op.Zxid] = op
		zxids[i] = op.Zxid
	}
	// Ack only once the wave is durably logged (one log write per wave,
	// not per op).
	s.scheduleLog(ctx, m.Epoch, from, zxids)
}

func (s *Server) onAckBatch(ctx *simnet.Context, from simnet.NodeID, m msgAckBatch) {
	if s.role != RoleLeader || m.Epoch != s.epoch {
		return
	}
	for _, zxid := range m.Zxids {
		if p, ok := s.pending[zxid]; ok {
			p.acks[from] = true
		}
	}
	s.maybeCommit(ctx)
}

// maybeCommit commits pending proposals in strict zxid order: a proposal
// only commits when it has quorum AND every earlier proposal has committed.
// This preserves the in-order delivery guarantee of the commit log (§3.4).
// The whole committed run fans out as ONE commit message to followers and
// ONE delta-encoded batch per observer.
func (s *Server) maybeCommit(ctx *simnet.Context) {
	sort.Slice(s.pendingZxid, func(i, j int) bool { return s.pendingZxid[i] < s.pendingZxid[j] })
	var committed []int64
	var updates []Update
	for len(s.pendingZxid) > 0 {
		zxid := s.pendingZxid[0]
		p := s.pending[zxid]
		if p == nil {
			s.pendingZxid = s.pendingZxid[1:]
			continue
		}
		if len(p.acks) < s.quorum() {
			break
		}
		// Commit. Capture the outgoing record first: it is the delta base
		// for this op's push down the tree.
		var oldData []byte
		if old := s.tree.Get(p.op.Path); old != nil {
			oldData = old.Data
		}
		s.tree.Apply(p.op)
		s.Obs.PathEvent(p.op.Path, obs.PropEvent{
			Stage: obs.EvZeusCommit, Node: string(s.id), Zxid: zxid, At: ctx.Now(),
		})
		updates = append(updates, s.makeUpdate(oldData, p.op))
		if p.client != "" {
			ctx.Send(p.client, MsgWriteReply{ReqID: p.reqID, OK: true, Zxid: zxid, Version: p.op.Version})
		}
		committed = append(committed, zxid)
		delete(s.pending, zxid)
		s.pendingZxid = s.pendingZxid[1:]
	}
	if len(committed) == 0 {
		return
	}
	s.Obs.Add("zeus.commit.batches", 1)
	s.Obs.Add("zeus.commit.ops", int64(len(committed)))
	s.othersDo(ctx, func(peer simnet.NodeID) {
		ctx.Send(peer, msgCommitBatch{Epoch: s.epoch, Zxids: committed})
	})
	size := updatesWireSize(updates)
	s.Obs.Add("zeus.push.bytes", int64(size))
	// Fan out as one broadcast wave in sorted order: iteration order
	// decides which observer draws each latency sample from the network
	// RNG, and map order would make otherwise-identical runs diverge. The
	// batch payload (the updates slice) is shared by every recipient and
	// its serialization is charged once for the wave.
	obsIDs := make([]simnet.NodeID, 0, len(s.observers))
	for ob := range s.observers {
		obsIDs = append(obsIDs, ob)
	}
	sort.Slice(obsIDs, func(i, j int) bool { return obsIDs[i] < obsIDs[j] })
	ctx.Broadcast(obsIDs, msgObserverBatch{Epoch: s.epoch, Updates: updates}, size)
	// Retire fully committed waves and let the next buffered wave propose.
	last := committed[len(committed)-1]
	for len(s.waveEnds) > 0 && s.waveEnds[0] <= last {
		s.waveEnds = s.waveEnds[1:]
		if s.inflightWaves > 0 {
			s.inflightWaves--
		}
	}
	s.maybePropose(ctx)
}

// makeUpdate builds the distribution-tree update for a committed op:
// delta-encoded against the record it replaces when that beats a full
// snapshot.
func (s *Server) makeUpdate(oldData []byte, op WriteOp) Update {
	u := Update{Path: op.Path, Version: op.Version, Zxid: op.Zxid, Delete: op.Delete}
	if op.Delete {
		return u
	}
	u.Payload = MakePayload(oldData, op.Data, s.deltaEncoding && oldData != nil)
	if u.Payload.IsDelta {
		s.Obs.Add("zeus.push.delta", 1)
	} else {
		s.Obs.Add("zeus.push.full", 1)
	}
	return u
}

func (s *Server) onCommitBatch(ctx *simnet.Context, from simnet.NodeID, m msgCommitBatch) {
	if from != s.leaderID {
		return
	}
	s.lastLeaderContact = ctx.Now()
	for _, zxid := range m.Zxids {
		op, ok := s.uncommitted[zxid]
		if !ok {
			if s.tree.LastZxid() >= zxid {
				continue // already applied (e.g. via sync)
			}
			// Missed the proposal (e.g. we were briefly down): resync.
			ctx.Send(from, msgSyncRequest{LastZxid: s.tree.LastZxid()})
			return
		}
		s.tree.Apply(op)
		delete(s.uncommitted, zxid)
	}
}

// ---- Observers ----

func (s *Server) onObserverRegister(ctx *simnet.Context, from simnet.NodeID, m msgObserverRegister) {
	if s.role != RoleLeader {
		return
	}
	s.observers[from] = ctx.Now()
	ops := s.tree.OpsAfter(m.LastZxid)
	if len(ops) == 0 {
		return
	}
	size := 0
	for _, op := range ops {
		size += len(op.Path) + updateHeaderBytes + len(op.Data)
	}
	ctx.SendSized(from, msgObserverSync{Epoch: s.epoch, Ops: ops}, size)
}
