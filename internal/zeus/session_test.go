package zeus

import (
	"testing"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// TestObserverSessionExpiry crashes an observer and asserts the leader
// expires its session, then restarts it and asserts it re-registers and
// catches up on the writes it missed.
func TestObserverSessionExpiry(t *testing.T) {
	net, e := testDeployment(t, 91)
	reg := obs.New()
	net.SetObs(reg)
	e.SetObs(reg)
	obsv := e.AddObserver("obs-c1", simnet.Placement{Region: "us-west", Cluster: "c1"})
	net.RunFor(5 * time.Second)

	c := addClient(net, e, "writer")
	write(t, net, c, "writer", "/sess/a", "v1")
	if e.LeaderServer().ObserverCount() != 1 {
		t.Fatalf("leader observer count = %d, want 1", e.LeaderServer().ObserverCount())
	}

	// Crash the observer: its registrations stop, and after the session
	// TTL the leader must expire it.
	net.Fail("obs-c1")
	net.RunFor(observerSessionTTL + 2*observerRegisterGap)
	if n := e.LeaderServer().ObserverCount(); n != 0 {
		t.Fatalf("leader still tracks %d observers after expiry window", n)
	}
	if reg.Counters().Get("zeus.observer.expired") == 0 {
		t.Error("zeus.observer.expired counter never incremented")
	}

	// Write while the observer is down, then restart: re-registration must
	// bring both the session and the missed data back.
	write(t, net, c, "writer", "/sess/a", "v2")
	net.Recover("obs-c1")
	net.RunFor(10 * time.Second)
	if e.LeaderServer().ObserverCount() != 1 {
		t.Fatalf("observer did not re-register after restart")
	}
	rec := obsv.Tree().Get("/sess/a")
	if rec == nil || string(rec.Data) != "v2" {
		t.Fatalf("observer did not catch up: %v", rec)
	}
}

// TestObserverWatchPruning registers a watch from a proxy node that then
// goes permanently silent; the observer must prune the dead watch session
// rather than leak it and keep pushing events into the void.
func TestObserverWatchPruning(t *testing.T) {
	net, e := testDeployment(t, 92)
	reg := obs.New()
	net.SetObs(reg)
	e.SetObs(reg)
	obsv := e.AddObserver("obs-c1", simnet.Placement{Region: "us-west", Cluster: "c1"})
	net.RunFor(5 * time.Second)

	c := addClient(net, e, "writer")
	write(t, net, c, "writer", "/prune/x", "v1")

	sink := simnet.HandlerFunc(func(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {})
	net.AddNode("ghost-proxy", simnet.Placement{Region: "us-west", Cluster: "c1"}, sink)
	net.After(0, func() {
		ctx := simnet.MakeContext(net, "ghost-proxy")
		ctx.Send("obs-c1", MsgFetch{ReqID: 1, Path: "/prune/x", Watch: true})
	})
	net.RunFor(2 * time.Second)
	if obsv.WatchCount("/prune/x") != 1 {
		t.Fatalf("watch not registered: count = %d", obsv.WatchCount("/prune/x"))
	}

	// The ghost proxy never pings again; past the TTL its registration
	// must be gone.
	net.RunFor(watchSessionTTL + 2*observerRegisterGap)
	if n := obsv.WatchCount("/prune/x"); n != 0 {
		t.Fatalf("dead watch session leaked: count = %d", n)
	}
	if reg.Counters().Get("zeus.observer.watch_pruned") == 0 {
		t.Error("zeus.observer.watch_pruned counter never incremented")
	}
}
