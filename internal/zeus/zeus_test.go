package zeus

import (
	"fmt"
	"testing"
	"time"

	"configerator/internal/simnet"
)

// testDeployment spins up a 5-member ensemble over three regions with one
// observer per cluster, mirroring the paper's multi-region deployment.
func testDeployment(t *testing.T, seed uint64) (*simnet.Network, *Ensemble) {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), seed)
	placements := []simnet.Placement{
		{Region: "us-west", Cluster: "zk1"},
		{Region: "us-west", Cluster: "zk2"},
		{Region: "us-east", Cluster: "zk3"},
		{Region: "us-east", Cluster: "zk4"},
		{Region: "eu", Cluster: "zk5"},
	}
	e := StartEnsemble(net, 5, placements)
	net.RunFor(10 * time.Second) // elect
	if e.Leader() == "" {
		t.Fatal("no leader elected after 10s")
	}
	return net, e
}

func addClient(net *simnet.Network, e *Ensemble, id simnet.NodeID) *Client {
	c := NewClient(id, e.Members)
	net.AddNode(id, simnet.Placement{Region: "us-west", Cluster: "tailer"}, c)
	return c
}

// write performs a synchronous write by running the network until done.
func write(t *testing.T, net *simnet.Network, c *Client, id simnet.NodeID, path, data string) WriteResult {
	t.Helper()
	var res WriteResult
	got := false
	net.After(0, func() {
		ctx := clientCtx(net, id)
		c.Write(&ctx, path, []byte(data), func(r WriteResult) {
			res = r
			got = true
		})
	})
	for i := 0; i < 200 && !got; i++ {
		net.RunFor(100 * time.Millisecond)
	}
	if !got {
		t.Fatalf("write %s=%s never committed", path, data)
	}
	return res
}

// clientCtx builds a context for driver-initiated sends.
func clientCtx(net *simnet.Network, id simnet.NodeID) simnet.Context {
	return simnet.MakeContext(net, id)
}

func TestLeaderElection(t *testing.T) {
	_, e := testDeployment(t, 1)
	leaders := 0
	for _, s := range e.Servers {
		if s.Role() == RoleLeader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want 1", leaders)
	}
}

func TestWriteReplicatesToQuorumAndFollowers(t *testing.T) {
	net, e := testDeployment(t, 2)
	c := addClient(net, e, "tailer")
	res := write(t, net, c, "tailer", "/configs/a", "v1")
	if !res.OK || res.Version != 1 {
		t.Fatalf("res = %+v", res)
	}
	net.RunFor(5 * time.Second)
	for id, s := range e.Servers {
		rec := s.Tree().Get("/configs/a")
		if rec == nil || string(rec.Data) != "v1" {
			t.Errorf("%s missing committed write", id)
		}
	}
}

func TestVersionsIncrement(t *testing.T) {
	net, e := testDeployment(t, 3)
	c := addClient(net, e, "tailer")
	for i := 1; i <= 3; i++ {
		res := write(t, net, c, "tailer", "/configs/a", fmt.Sprintf("v%d", i))
		if res.Version != int64(i) {
			t.Fatalf("write %d: version = %d", i, res.Version)
		}
	}
}

func TestObserverReplicates(t *testing.T) {
	net, e := testDeployment(t, 4)
	obs := e.AddObserver("obs-c1", simnet.Placement{Region: "us-west", Cluster: "c1"})
	net.RunFor(5 * time.Second) // register
	c := addClient(net, e, "tailer")
	write(t, net, c, "tailer", "/configs/a", "v1")
	net.RunFor(5 * time.Second)
	rec := obs.Tree().Get("/configs/a")
	if rec == nil || string(rec.Data) != "v1" {
		t.Fatal("observer did not receive the pushed write")
	}
}

func TestObserverCatchUpAfterRestart(t *testing.T) {
	net, e := testDeployment(t, 5)
	obs := e.AddObserver("obs-c1", simnet.Placement{Region: "us-west", Cluster: "c1"})
	net.RunFor(5 * time.Second)
	c := addClient(net, e, "tailer")
	write(t, net, c, "tailer", "/configs/a", "v1")
	net.RunFor(2 * time.Second)
	net.Fail("obs-c1")
	write(t, net, c, "tailer", "/configs/a", "v2")
	write(t, net, c, "tailer", "/configs/b", "b1")
	net.RunFor(2 * time.Second)
	net.Recover("obs-c1")
	net.RunFor(10 * time.Second) // periodic re-register catches up
	if rec := obs.Tree().Get("/configs/a"); rec == nil || string(rec.Data) != "v2" {
		t.Error("observer missed /configs/a=v2 after recovery")
	}
	if rec := obs.Tree().Get("/configs/b"); rec == nil || string(rec.Data) != "b1" {
		t.Error("observer missed /configs/b after recovery")
	}
}

func TestLeaderFailover(t *testing.T) {
	net, e := testDeployment(t, 6)
	first := e.Leader()
	c := addClient(net, e, "tailer")
	write(t, net, c, "tailer", "/configs/a", "v1")
	net.Fail(first)
	net.RunFor(30 * time.Second)
	second := e.Leader()
	if second == "" {
		t.Fatal("no new leader after failover")
	}
	if second == first {
		t.Fatalf("leader did not change: %s", second)
	}
	// Writes continue working.
	res := write(t, net, c, "tailer", "/configs/a", "v2")
	if !res.OK {
		t.Fatal("write after failover failed")
	}
	net.RunFor(5 * time.Second)
	for id, s := range e.Servers {
		if id == first {
			continue
		}
		rec := s.Tree().Get("/configs/a")
		if rec == nil || string(rec.Data) != "v2" {
			t.Errorf("%s missing post-failover write", id)
		}
	}
}

func TestOldLeaderRejoins(t *testing.T) {
	net, e := testDeployment(t, 7)
	first := e.Leader()
	c := addClient(net, e, "tailer")
	write(t, net, c, "tailer", "/configs/a", "v1")
	net.Fail(first)
	net.RunFor(30 * time.Second)
	write(t, net, c, "tailer", "/configs/a", "v2")
	net.Recover(first)
	net.RunFor(30 * time.Second)
	// The old leader must have stepped down and caught up.
	old := e.Servers[first]
	if old.Role() == RoleLeader && old.Epoch() <= e.LeaderServer().Epoch() {
		if first != e.Leader() {
			t.Errorf("old leader did not step down")
		}
	}
	rec := old.Tree().Get("/configs/a")
	if rec == nil || string(rec.Data) != "v2" {
		t.Errorf("old leader did not catch up: %v", rec)
	}
}

func TestInOrderDeliveryToObserver(t *testing.T) {
	net, e := testDeployment(t, 8)
	obs := e.AddObserver("obs-c1", simnet.Placement{Region: "us-west", Cluster: "c1"})
	net.RunFor(5 * time.Second)
	c := addClient(net, e, "tailer")
	// Fire many writes without waiting in between.
	const n = 30
	committed := 0
	net.After(0, func() {
		ctx := clientCtx(net, "tailer")
		for i := 0; i < n; i++ {
			c.Write(&ctx, "/configs/seq", []byte(fmt.Sprintf("v%d", i)), func(r WriteResult) {
				committed++
			})
		}
	})
	net.RunFor(60 * time.Second)
	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
	rec := obs.Tree().Get("/configs/seq")
	if rec == nil || string(rec.Data) != fmt.Sprintf("v%d", n-1) {
		t.Fatalf("observer final value = %v, want v%d", rec, n-1)
	}
	if rec.Version != n {
		t.Errorf("final version = %d, want %d", rec.Version, n)
	}
	// Observer log must be in strictly increasing zxid order per path with
	// consecutive versions.
	ops := obs.Tree().OpsAfter(0)
	lastZxid := int64(0)
	lastVer := int64(0)
	for _, op := range ops {
		if op.Zxid <= lastZxid {
			t.Fatalf("zxid out of order: %d after %d", op.Zxid, lastZxid)
		}
		lastZxid = op.Zxid
		if op.Path == "/configs/seq" {
			if op.Version != lastVer+1 {
				t.Fatalf("version gap: %d after %d", op.Version, lastVer)
			}
			lastVer = op.Version
		}
	}
}

func TestWatchNotification(t *testing.T) {
	net, e := testDeployment(t, 9)
	obs := e.AddObserver("obs-c1", simnet.Placement{Region: "us-west", Cluster: "c1"})
	net.RunFor(5 * time.Second)
	c := addClient(net, e, "tailer")
	write(t, net, c, "tailer", "/configs/a", "v1")
	net.RunFor(3 * time.Second)

	// A fake proxy fetches with a watch and then waits for the push.
	var events []MsgWatchEvent
	var fetches []MsgFetchReply
	proxy := simnet.HandlerFunc(func(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
		switch m := msg.(type) {
		case MsgFetchReply:
			fetches = append(fetches, m)
		case MsgWatchEvent:
			events = append(events, m)
		}
	})
	net.AddNode("proxy-1", simnet.Placement{Region: "us-west", Cluster: "c1"}, proxy)
	net.After(0, func() {
		ctx := clientCtx(net, "proxy-1")
		ctx.Send("obs-c1", MsgFetch{ReqID: 1, Path: "/configs/a", Watch: true})
	})
	net.RunFor(2 * time.Second)
	if len(fetches) != 1 || !fetches[0].Exists {
		t.Fatalf("fetch reply = %+v", fetches)
	}
	if got, err := fetches[0].Payload.Resolve(nil); err != nil || string(got) != "v1" {
		t.Fatalf("fetch payload = %q, %v", got, err)
	}
	if obs.WatchCount("/configs/a") != 1 {
		t.Fatalf("WatchCount = %d", obs.WatchCount("/configs/a"))
	}
	write(t, net, c, "tailer", "/configs/a", "v2")
	net.RunFor(3 * time.Second)
	if len(events) != 1 || events[0].Version != 2 {
		t.Fatalf("watch events = %+v", events)
	}
	if got, err := events[0].Payload.Resolve([]byte("v1")); err != nil || string(got) != "v2" {
		t.Fatalf("watch payload = %q, %v", got, err)
	}
	// Unwatch stops notifications.
	net.After(0, func() {
		ctx := clientCtx(net, "proxy-1")
		ctx.Send("obs-c1", MsgUnwatch{Path: "/configs/a"})
	})
	net.RunFor(1 * time.Second)
	write(t, net, c, "tailer", "/configs/a", "v3")
	net.RunFor(3 * time.Second)
	if len(events) != 1 {
		t.Fatalf("events after unwatch = %d", len(events))
	}
}

func TestRedirectToLeader(t *testing.T) {
	net, e := testDeployment(t, 10)
	// Point the client away from the leader; it must follow the redirect.
	c := addClient(net, e, "tailer")
	leader := e.Leader()
	for i, m := range e.Members {
		if m != leader {
			c.target = i
			break
		}
	}
	res := write(t, net, c, "tailer", "/x", "1")
	if !res.OK {
		t.Fatal("redirected write failed")
	}
}

func TestDataTreeIdempotent(t *testing.T) {
	tree := NewDataTree()
	op := WriteOp{Zxid: 5, Path: "/a", Data: []byte("x"), Version: 1}
	if !tree.Apply(op) {
		t.Fatal("first apply rejected")
	}
	if tree.Apply(op) {
		t.Fatal("duplicate apply accepted")
	}
	if tree.Apply(WriteOp{Zxid: 3, Path: "/a", Data: []byte("old"), Version: 0}) {
		t.Fatal("stale apply accepted")
	}
	if got := string(tree.Get("/a").Data); got != "x" {
		t.Fatalf("data = %q", got)
	}
}

func TestDataTreeOpsAfter(t *testing.T) {
	tree := NewDataTree()
	for i := int64(1); i <= 5; i++ {
		tree.Apply(WriteOp{Zxid: i * 10, Path: "/p", Data: []byte{byte(i)}, Version: i})
	}
	ops := tree.OpsAfter(20)
	if len(ops) != 3 || ops[0].Zxid != 30 {
		t.Fatalf("OpsAfter = %+v", ops)
	}
	if got := tree.NextVersion("/p"); got != 6 {
		t.Fatalf("NextVersion = %d", got)
	}
	if got := tree.NextVersion("/new"); got != 1 {
		t.Fatalf("NextVersion(new) = %d", got)
	}
}

func TestDataTreeDelete(t *testing.T) {
	tree := NewDataTree()
	tree.Apply(WriteOp{Zxid: 1, Path: "/a", Data: []byte("x"), Version: 1})
	tree.Apply(WriteOp{Zxid: 2, Path: "/a", Delete: true})
	if tree.Get("/a") != nil {
		t.Fatal("deleted path still present")
	}
	if tree.Size() != 0 {
		t.Fatalf("Size = %d", tree.Size())
	}
}

func TestMinorityPartitionBlocksWrites(t *testing.T) {
	net, e := testDeployment(t, 11)
	leader := e.Leader()
	// Partition the leader from all other members: it keeps leadership
	// briefly but cannot commit.
	for _, m := range e.Members {
		if m != leader {
			net.Partition(leader, m)
		}
	}
	c := addClient(net, e, "tailer")
	done := false
	net.After(0, func() {
		ctx := clientCtx(net, "tailer")
		c.Write(&ctx, "/configs/p", []byte("x"), func(WriteResult) { done = true })
	})
	net.RunFor(5 * time.Second)
	// The majority side elects a new leader; the client eventually reaches
	// it by rotating. Either way the write must not be acknowledged by the
	// isolated leader.
	if done {
		// If done, it must have been committed on the majority side.
		var committed int
		for id, s := range e.Servers {
			if id == leader {
				continue
			}
			if s.Tree().Get("/configs/p") != nil {
				committed++
			}
		}
		if committed < 3 {
			t.Fatalf("write acknowledged without quorum (replicas=%d)", committed)
		}
	}
	net.RunFor(60 * time.Second)
	if e.Leader() == leader {
		t.Fatal("isolated leader should have been superseded")
	}
}
